#include "corun/ext/kernel_split.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "corun/common/check.hpp"

namespace corun::ext {
namespace {

constexpr std::size_t kMaxStages = 16;

/// Extra wall time a cold start costs for a stage of reference length `t`.
Seconds cold_extra(const SplitOptions& options, Seconds stage_time) {
  return options.cold_start_fraction * stage_time *
         (options.cold_start_penalty - 1.0);
}

}  // namespace

std::size_t StagePlacement::handoffs() const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 1; i < device.size(); ++i) {
    if (device[i] != device[i - 1]) ++count;
  }
  return count;
}

bool StagePlacement::is_whole_job() const noexcept {
  return handoffs() == 0;
}

KernelSplitPlanner::KernelSplitPlanner(sim::MachineConfig config,
                                       SplitOptions options)
    : config_(std::move(config)), options_(options) {
  CORUN_CHECK(options_.handoff_latency >= 0.0);
  CORUN_CHECK(options_.cold_start_penalty >= 1.0);
  CORUN_CHECK(options_.cold_start_fraction >= 0.0 &&
              options_.cold_start_fraction <= 1.0);
}

Seconds KernelSplitPlanner::stage_time(const workload::KernelDescriptor& stage,
                                       sim::DeviceKind device,
                                       std::optional<Watts> cap) const {
  const sim::JobSpec spec = workload::make_job_spec(stage, options_.seed);
  const sim::FrequencyLadder& ladder = config_.ladder(device);
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (sim::FreqLevel l = 0; l <= ladder.max_level(); ++l) {
    const sim::StandaloneResult r = sim::run_standalone(
        config_, spec, device,
        device == sim::DeviceKind::kCpu ? l : 0,
        device == sim::DeviceKind::kGpu ? l : 0, options_.seed,
        options_.engine_mode);
    if (cap && r.avg_power > *cap) continue;
    best = std::min(best, r.time);
  }
  return best;
}

Seconds KernelSplitPlanner::predict(const MultiKernelJob& job,
                                    const StagePlacement& placement,
                                    std::optional<Watts> cap) const {
  CORUN_CHECK(placement.device.size() == job.stage_count());
  Seconds total = 0.0;
  for (std::size_t i = 0; i < job.stage_count(); ++i) {
    const Seconds t = stage_time(job.stages[i], placement.device[i], cap);
    CORUN_CHECK_MSG(t < std::numeric_limits<Seconds>::infinity(),
                    "stage infeasible under the cap");
    total += t;
    if (i > 0 && placement.device[i] != placement.device[i - 1]) {
      total += options_.handoff_latency + cold_extra(options_, t);
    }
  }
  return total;
}

SplitPlan KernelSplitPlanner::plan(const MultiKernelJob& job,
                                   std::optional<Watts> cap) const {
  const std::size_t k = job.stage_count();
  CORUN_CHECK_MSG(k >= 1 && k <= kMaxStages,
                  "chains limited to 1..16 stages");

  // Per-stage per-device times, measured once.
  std::vector<std::array<Seconds, sim::kDeviceCount>> t(k);
  for (std::size_t i = 0; i < k; ++i) {
    t[i][0] = stage_time(job.stages[i], sim::DeviceKind::kCpu, cap);
    t[i][1] = stage_time(job.stages[i], sim::DeviceKind::kGpu, cap);
    CORUN_CHECK_MSG(t[i][0] < 1e18 || t[i][1] < 1e18,
                    "stage infeasible on both devices");
  }

  SplitPlan plan;
  plan.predicted_time = std::numeric_limits<Seconds>::infinity();
  for (std::size_t mask = 0; mask < (1ull << k); ++mask) {
    Seconds total = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < k && feasible; ++i) {
      const std::size_t d = (mask >> i) & 1u;  // 0 = CPU, 1 = GPU
      if (t[i][d] >= 1e18) {
        feasible = false;
        break;
      }
      total += t[i][d];
      if (i > 0 && (((mask >> i) & 1u) != ((mask >> (i - 1)) & 1u))) {
        total += options_.handoff_latency + cold_extra(options_, t[i][d]);
      }
    }
    if (!feasible) continue;
    ++plan.placements_searched;
    if (mask == 0) plan.whole_cpu_time = total;
    if (mask == (1ull << k) - 1) plan.whole_gpu_time = total;
    if (total < plan.predicted_time) {
      plan.predicted_time = total;
      plan.placement.device.assign(k, sim::DeviceKind::kCpu);
      for (std::size_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1u) plan.placement.device[i] = sim::DeviceKind::kGpu;
      }
    }
  }
  CORUN_CHECK_MSG(plan.placements_searched > 0, "no feasible placement");
  return plan;
}

Seconds execute_split(const sim::MachineConfig& config,
                      const MultiKernelJob& job,
                      const StagePlacement& placement,
                      const SplitOptions& options, std::optional<Watts> cap,
                      const sim::JobSpec* co_runner,
                      sim::DeviceKind co_runner_device) {
  CORUN_CHECK(placement.device.size() == job.stage_count());
  sim::EngineOptions eo;
  eo.mode = options.engine_mode;
  eo.seed = options.seed;
  eo.record_samples = false;
  if (cap) {
    eo.power_cap = cap;
    eo.policy = sim::GovernorPolicy::kGpuBiased;
  }
  sim::Engine engine(config, eo);
  engine.set_ceilings(config.cpu_ladder.max_level(),
                      config.gpu_ladder.max_level());
  if (co_runner != nullptr) {
    engine.launch(*co_runner, co_runner_device);
  }

  Seconds chain_end = 0.0;
  for (std::size_t i = 0; i < job.stage_count(); ++i) {
    const sim::DeviceKind device = placement.device[i];
    if (i > 0 && device != placement.device[i - 1]) {
      // Handoff: synchronization latency plus the cold-cache refill,
      // charged as dead time before the stage starts (the analytic model
      // charges the equivalent stretch inside the stage).
      const sim::JobSpec probe = workload::make_job_spec(job.stages[i], options.seed);
      const Seconds approx_stage =
          probe.profile(device).total_ref_time();
      engine.run_for(options.handoff_latency +
                     options.cold_start_fraction * approx_stage *
                         (options.cold_start_penalty - 1.0));
    }
    const sim::JobSpec spec =
        workload::make_job_spec(job.stages[i], options.seed + i);
    if (co_runner != nullptr && device == co_runner_device) {
      // Stage wants the device the co-runner holds: on the real system the
      // queue serializes; here the chain waits for the co-runner to finish.
      while (!engine.device_idle(device)) {
        if (engine.idle()) break;
        (void)engine.run_until_event();
      }
    }
    const sim::JobId id = engine.launch(spec, device);
    while (!engine.stats(id).finished) {
      (void)engine.run_until_event();
    }
    chain_end = engine.stats(id).finish_time;
  }
  return chain_end;
}

MultiKernelJob make_alternating_chain(std::size_t stages,
                                      Seconds stage_seconds) {
  CORUN_CHECK(stages >= 1 && stages <= kMaxStages);
  MultiKernelJob job;
  job.name = "alternating_chain";
  for (std::size_t i = 0; i < stages; ++i) {
    workload::KernelDescriptor stage;
    stage.name = "stage" + std::to_string(i);
    stage.phase_count = 4;
    stage.phase_variability = 0.15;
    if (i % 2 == 0) {
      // CPU-friendly: branchy, cache-resident work the iGPU handles poorly.
      stage.cpu = {.base_time = stage_seconds, .compute_frac = 0.6,
                   .mem_bw = 6.0, .llc_footprint_mb = 1.5,
                   .llc_sensitivity = 0.3};
      stage.gpu = {.base_time = stage_seconds * 2.4, .compute_frac = 0.55,
                   .mem_bw = 6.0, .llc_footprint_mb = 1.5,
                   .llc_sensitivity = 0.1};
    } else {
      // GPU-friendly: wide data-parallel work.
      stage.cpu = {.base_time = stage_seconds * 2.4, .compute_frac = 0.5,
                   .mem_bw = 7.0, .llc_footprint_mb = 2.0,
                   .llc_sensitivity = 0.3};
      stage.gpu = {.base_time = stage_seconds, .compute_frac = 0.45,
                   .mem_bw = 8.0, .llc_footprint_mb = 2.0,
                   .llc_sensitivity = 0.1};
    }
    job.stages.push_back(stage);
  }
  return job;
}

MultiKernelJob make_uniform_gpu_chain(std::size_t stages,
                                      Seconds stage_seconds) {
  CORUN_CHECK(stages >= 1 && stages <= kMaxStages);
  MultiKernelJob job;
  job.name = "uniform_gpu_chain";
  for (std::size_t i = 0; i < stages; ++i) {
    workload::KernelDescriptor stage;
    stage.name = "stage" + std::to_string(i);
    stage.phase_count = 4;
    stage.phase_variability = 0.15;
    stage.cpu = {.base_time = stage_seconds * 2.2, .compute_frac = 0.5,
                 .mem_bw = 7.0, .llc_footprint_mb = 2.0,
                 .llc_sensitivity = 0.3};
    stage.gpu = {.base_time = stage_seconds, .compute_frac = 0.45,
                 .mem_bw = 8.0, .llc_footprint_mb = 2.0,
                 .llc_sensitivity = 0.1};
    job.stages.push_back(stage);
  }
  return job;
}

}  // namespace corun::ext
