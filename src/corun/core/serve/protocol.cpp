#include "corun/core/serve/protocol.hpp"

#include <errno.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "corun/common/csv.hpp"
#include "corun/core/sched/plan_cache/signature.hpp"

namespace corun::serve {

namespace {

/// Strict non-negative integer parse (the repo's garbage-parses-as-0 flag
/// idiom is deliberately *not* used on the wire: a malformed frame must be
/// answered `error`, not silently reinterpreted).
Expected<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return fail("empty integer field", ErrorCategory::kParse);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return fail("bad integer '" + text + "'", ErrorCategory::kParse);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

Expected<std::optional<Watts>> parse_cap(const std::string& text) {
  if (text.empty()) return std::optional<Watts>{};
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return fail("bad cap '" + text + "'", ErrorCategory::kParse);
  }
  return std::optional<Watts>{v};
}

std::string join_jobs(const std::vector<std::string>& jobs) {
  std::string out;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0) out += ';';
    out += jobs[i];
  }
  return out;
}

std::vector<std::string> split_jobs(const std::string& text) {
  std::vector<std::string> jobs;
  std::string current;
  for (const char c : text) {
    if (c == ';') {
      if (!current.empty()) jobs.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) jobs.push_back(current);
  return jobs;
}

Expected<PlanRequest> request_from_row(const std::vector<std::string>& row,
                                       std::size_t first_field) {
  // Fields from `first_field`: seq, cap, scheduler, policy, seed, jobs...
  if (row.size() < first_field + 5) {
    return fail("request row has too few fields", ErrorCategory::kParse);
  }
  PlanRequest request;
  auto seq = parse_u64(row[first_field]);
  if (!seq.has_value()) return seq.error();
  request.seq = seq.value();
  auto cap = parse_cap(row[first_field + 1]);
  if (!cap.has_value()) return cap.error();
  request.cap = cap.value();
  request.scheduler = row[first_field + 2];
  request.policy = row[first_field + 3];
  if (request.scheduler.empty()) {
    return fail("request has empty scheduler", ErrorCategory::kParse);
  }
  auto seed = parse_u64(row[first_field + 4]);
  if (!seed.has_value()) return seed.error();
  request.seed = seed.value();
  return request;
}

}  // namespace

const char* response_status_name(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kBusy: return "busy";
    case ResponseStatus::kError: return "error";
  }
  return "?";
}

std::string request_to_payload(const PlanRequest& request) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  std::vector<std::string> row{
      "plan", std::to_string(request.seq),
      request.cap ? sched::signature_double(*request.cap) : std::string{},
      request.scheduler, request.policy, std::to_string(request.seed)};
  row.insert(row.end(), request.jobs.begin(), request.jobs.end());
  writer.write_row(row);
  std::string payload = oss.str();
  // One row, no trailing newline on the wire.
  if (!payload.empty() && payload.back() == '\n') payload.pop_back();
  return payload;
}

Expected<PlanRequest> request_from_payload(const std::string& payload) {
  const auto rows = parse_csv(payload);
  if (!rows.has_value()) return rows.error();
  const auto& r = rows.value();
  if (r.size() != 1 || r[0].empty() || r[0][0] != "plan") {
    return fail("request payload must be one 'plan' row",
                ErrorCategory::kParse);
  }
  auto parsed = request_from_row(r[0], 1);
  if (!parsed.has_value()) return parsed.error();
  PlanRequest request = std::move(parsed).value();
  request.jobs.assign(r[0].begin() + 6, r[0].end());
  for (const std::string& job : request.jobs) {
    if (job.empty()) {
      return fail("request has empty job name", ErrorCategory::kParse);
    }
  }
  return request;
}

std::string response_to_payload(const PlanResponse& response) {
  std::ostringstream oss;
  oss << response_status_name(response.status) << ',' << response.seq << ','
      << response.message << '\n'
      << response.body;
  return oss.str();
}

Expected<PlanResponse> response_from_payload(const std::string& payload) {
  const auto line_end = payload.find('\n');
  const std::string line =
      line_end == std::string::npos ? payload : payload.substr(0, line_end);
  PlanResponse response;
  response.body =
      line_end == std::string::npos ? "" : payload.substr(line_end + 1);
  const auto c1 = line.find(',');
  if (c1 == std::string::npos) {
    return fail("response status line lacks fields", ErrorCategory::kParse);
  }
  const auto c2 = line.find(',', c1 + 1);
  if (c2 == std::string::npos) {
    return fail("response status line lacks message field",
                ErrorCategory::kParse);
  }
  const std::string status = line.substr(0, c1);
  if (status == "ok") {
    response.status = ResponseStatus::kOk;
  } else if (status == "busy") {
    response.status = ResponseStatus::kBusy;
  } else if (status == "error") {
    response.status = ResponseStatus::kError;
  } else {
    return fail("unknown response status '" + status + "'",
                ErrorCategory::kParse);
  }
  auto seq = parse_u64(line.substr(c1 + 1, c2 - c1 - 1));
  if (!seq.has_value()) return seq.error();
  response.seq = seq.value();
  response.message = line.substr(c2 + 1);
  return response;
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n & 0xff);
  header[1] = static_cast<unsigned char>((n >> 8) & 0xff);
  header[2] = static_cast<unsigned char>((n >> 16) & 0xff);
  header[3] = static_cast<unsigned char>((n >> 24) & 0xff);
  std::string wire(reinterpret_cast<const char*>(header), 4);
  wire += payload;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

namespace {

/// Reads exactly `n` bytes; returns the count actually read before EOF.
Expected<std::size_t> read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("read failed: ") + std::strerror(errno),
                  ErrorCategory::kIo);
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

Expected<std::optional<std::string>> read_frame(int fd) {
  char header[4];
  auto got = read_exact(fd, header, 4);
  if (!got.has_value()) return got.error();
  if (got.value() == 0) return std::optional<std::string>{};  // clean EOF
  if (got.value() < 4) {
    return fail("torn frame: EOF inside length prefix", ErrorCategory::kIo);
  }
  const std::uint32_t n =
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
       << 24);
  if (n > kMaxFrameBytes) {
    return fail("frame length " + std::to_string(n) + " exceeds limit",
                ErrorCategory::kParse);
  }
  std::string payload(n, '\0');
  got = read_exact(fd, payload.data(), n);
  if (!got.has_value()) return got.error();
  if (got.value() < n) {
    return fail("torn frame: EOF inside payload", ErrorCategory::kIo);
  }
  return std::optional<std::string>{std::move(payload)};
}

void request_trace_to_csv(const std::vector<PlanRequest>& requests,
                          std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row({"seq", "cap", "scheduler", "policy", "seed", "jobs"});
  for (const PlanRequest& request : requests) {
    writer.write_row(
        {std::to_string(request.seq),
         request.cap ? sched::signature_double(*request.cap) : std::string{},
         request.scheduler, request.policy, std::to_string(request.seed),
         join_jobs(request.jobs)});
  }
}

Expected<std::vector<PlanRequest>> request_trace_from_csv(
    const std::string& text) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  const auto& r = rows.value();
  if (r.empty() || r[0] != std::vector<std::string>{"seq", "cap", "scheduler",
                                                    "policy", "seed", "jobs"}) {
    return fail("request trace: missing or wrong header row",
                ErrorCategory::kParse);
  }
  std::vector<PlanRequest> requests;
  for (std::size_t i = 1; i < r.size(); ++i) {
    if (r[i].empty()) continue;
    if (r[i].size() != 6) {
      return fail("request trace row " + std::to_string(i) +
                      ": expected 6 fields",
                  ErrorCategory::kParse);
    }
    auto parsed = request_from_row(r[i], 0);
    if (!parsed.has_value()) {
      return fail("request trace row " + std::to_string(i) + ": " +
                      parsed.error().message,
                  ErrorCategory::kParse);
    }
    PlanRequest request = std::move(parsed).value();
    request.jobs = split_jobs(r[i][5]);
    requests.push_back(std::move(request));
  }
  return requests;
}

Expected<std::vector<PlanRequest>> load_request_trace(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fail("cannot open request trace '" + path + "'",
                ErrorCategory::kIo);
  }
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    return fail("read error on request trace '" + path + "'",
                ErrorCategory::kIo);
  }
  return request_trace_from_csv(content.str());
}

}  // namespace corun::serve
