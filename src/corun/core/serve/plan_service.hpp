// PlanService: the one-shot planning core shared by corun-schedule and the
// serving daemon.
//
// The service owns nothing heavy — it references the artifacts a daemon
// loads once at startup (batch, predictor) and shares the plan cache. Per
// request it constructs the requested registry scheduler (memoized through
// the shared sharded PlanCache when one is attached), plans, evaluates the
// predicted makespan and the lower bound, and renders the canonical report
// text. `render_plan_report` is the single source of that rendering, so a
// daemon response is byte-identical to a `corun-schedule` run over the
// same artifacts by construction, not by convention.
//
// Thread safety: `plan()` is const and safe to call concurrently — the
// referenced artifacts are immutable, the signature builder is immutable,
// and the plan cache is internally synchronized (sharded). Each call
// builds its own scheduler instance; schedulers are not shared between
// requests.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "corun/common/expected.hpp"
#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/sched/plan_cache/plan_cache.hpp"
#include "corun/core/serve/protocol.hpp"
#include "corun/workload/batch.hpp"

namespace corun::serve {

/// Everything a planned request produces; `text` is what goes on the wire.
struct PlanResult {
  sched::Schedule schedule;
  std::string scheduler_name;           ///< presentation name ("HCS+", ...)
  std::vector<std::string> job_names;   ///< planned batch order
  Seconds makespan = 0.0;
  Seconds lower_bound = 0.0;
  std::string text;                     ///< canonical report rendering
};

/// The canonical report text (corun-schedule's stdout for a plain run):
///   scheduler: <name>
///   plan:      <one-line-per-device rendering>
///   predicted makespan: %.2f s
///   lower bound:        %.2f s
[[nodiscard]] std::string render_plan_report(const std::string& scheduler_name,
                                             const std::string& plan_text,
                                             Seconds makespan,
                                             Seconds lower_bound);

class PlanService {
 public:
  /// `batch` and `predictor` must outlive the service; `cache` may be null
  /// (planning stays correct, every request pays a full search).
  PlanService(const workload::Batch& batch,
              const model::CoRunPredictor& predictor,
              std::shared_ptr<sched::PlanCache> cache);

  /// Plans one request. Fails (kNotFound / kInvalidArgument) on an unknown
  /// scheduler, an unknown policy, or a job name outside the loaded batch;
  /// those become `error` responses, never a crash.
  [[nodiscard]] Expected<PlanResult> plan(const PlanRequest& request) const;

  [[nodiscard]] const workload::Batch& batch() const noexcept {
    return *batch_;
  }
  [[nodiscard]] const sched::PlanCache* cache() const noexcept {
    return cache_.get();
  }

 private:
  const workload::Batch* batch_;
  const model::CoRunPredictor* predictor_;
  std::shared_ptr<sched::PlanCache> cache_;
  std::shared_ptr<const sched::SignatureBuilder> signature_builder_;
  std::map<std::string, std::size_t> name_to_index_;  ///< batch instances
};

}  // namespace corun::serve
