#include "corun/core/serve/plan_service.hpp"

#include <cstdio>
#include <set>

#include "corun/core/sched/lower_bound.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/plan_cache/caching_scheduler.hpp"
#include "corun/sim/governor.hpp"

namespace corun::serve {

std::string render_plan_report(const std::string& scheduler_name,
                               const std::string& plan_text, Seconds makespan,
                               Seconds lower_bound) {
  std::string out;
  out += "scheduler: " + scheduler_name + "\n";
  out += "plan:      " + plan_text + "\n";
  char line[64];
  std::snprintf(line, sizeof(line), "predicted makespan: %.2f s\n", makespan);
  out += line;
  std::snprintf(line, sizeof(line), "lower bound:        %.2f s\n",
                lower_bound);
  out += line;
  return out;
}

PlanService::PlanService(const workload::Batch& batch,
                         const model::CoRunPredictor& predictor,
                         std::shared_ptr<sched::PlanCache> cache)
    : batch_(&batch),
      predictor_(&predictor),
      cache_(std::move(cache)),
      signature_builder_(
          std::make_shared<const sched::SignatureBuilder>(predictor)) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    name_to_index_[batch.job(i).instance_name] = i;
  }
}

Expected<PlanResult> PlanService::plan(const PlanRequest& request) const {
  if (request.policy != "gpu" && request.policy != "cpu") {
    return fail("unknown policy '" + request.policy + "' (gpu|cpu)",
                ErrorCategory::kInvalidArgument);
  }

  // Resolve the job subset. The request's job order defines the planned
  // batch order (exactly as the order of a batch CSV handed to
  // corun-schedule would), so a subset request is reproducible one-shot.
  workload::Batch sub_batch;
  const workload::Batch* planned_batch = batch_;
  if (!request.jobs.empty()) {
    std::set<std::string> seen;
    for (const std::string& name : request.jobs) {
      const auto it = name_to_index_.find(name);
      if (it == name_to_index_.end()) {
        return fail("unknown job '" + name + "' in request",
                    ErrorCategory::kNotFound);
      }
      if (!seen.insert(name).second) {
        return fail("duplicate job '" + name + "' in request",
                    ErrorCategory::kInvalidArgument);
      }
      const workload::BatchJob& job = batch_->job(it->second);
      sub_batch.add(job.descriptor, job.seed, job.instance_name);
    }
    planned_batch = &sub_batch;
  }

  sched::SchedulerContext ctx;
  ctx.batch = planned_batch;
  ctx.predictor = predictor_;
  ctx.cap = request.cap;
  ctx.policy = request.policy == "cpu" ? sim::GovernorPolicy::kCpuBiased
                                       : sim::GovernorPolicy::kGpuBiased;

  auto scheduler =
      sched::make_cached_scheduler(request.scheduler, request.seed, cache_);
  if (scheduler == nullptr) {
    return fail("unknown scheduler '" + request.scheduler + "'",
                ErrorCategory::kNotFound);
  }
  if (auto* caching =
          dynamic_cast<sched::CachingScheduler*>(scheduler.get())) {
    caching->set_signature_builder(signature_builder_);
  }

  PlanResult result;
  result.schedule = scheduler->plan(ctx);
  result.scheduler_name = scheduler->name();
  result.job_names = ctx.job_names();
  const sched::MakespanEvaluator evaluator(ctx);
  result.makespan = evaluator.makespan(result.schedule);
  result.lower_bound = sched::compute_lower_bound(ctx).t_low_tight;
  result.text =
      render_plan_report(result.scheduler_name,
                         result.schedule.to_string(result.job_names),
                         result.makespan, result.lower_bound);
  return result;
}

}  // namespace corun::serve
