// Wire protocol of the scheduling daemon (corun-served / corun-replay).
//
// Transport: a bidirectional byte stream (Unix socket or stdin/stdout
// pipe) carrying length-prefixed frames — a 4-byte little-endian payload
// length followed by that many payload bytes. Length prefixing keeps the
// stream self-delimiting under batching: the daemon drains every frame
// that is already available before planning, and the client can pipeline
// thousands of requests without any handshake per request.
//
// Payloads are text. A request is one CSV row:
//
//   plan,<seq>,<cap>,<scheduler>,<policy>,<seed>[,<job>...]
//
// where `seq` is the client-chosen sequence id (replies are emitted in
// ascending seq order per chunk — the deterministic response-assembly
// stage), `cap` is the power cap rendered %.17g ("" = uncapped),
// `scheduler` a registry name, `policy` gpu|cpu, `seed` the scheduler
// seed, and the optional job tail selects a subset of the daemon's batch
// by instance name ("" tail = the full batch).
//
// A response payload is a status line followed by the body:
//
//   <ok|busy|error>,<seq>,<message>\n<body>
//
// `ok` bodies are byte-identical to what `corun-schedule` prints for the
// same request over the same artifacts. `busy` is the honest overload
// answer (bounded queue overflow or per-request deadline exceeded); the
// request was *not* planned. `error` covers malformed or unsatisfiable
// requests (unknown scheduler, unknown job name).
//
// The replay corpus mirrors the demand-trace CSV conventions: a header
// row, one row per request, doubles rendered %.17g so caps round-trip
// exactly:
//
//   seq,cap,scheduler,policy,seed,jobs
//   0,15,bnb,gpu,42,sc;lud
//
// with `jobs` ';'-joined ("" = full batch).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/common/units.hpp"

namespace corun::serve {

struct PlanRequest {
  std::uint64_t seq = 0;
  std::optional<Watts> cap;             ///< nullopt = uncapped
  std::string scheduler = "hcs+";       ///< registry name
  std::string policy = "gpu";           ///< "gpu" | "cpu"
  std::uint64_t seed = 42;
  std::vector<std::string> jobs;        ///< instance names; empty = full batch
};

enum class ResponseStatus { kOk, kBusy, kError };

[[nodiscard]] const char* response_status_name(ResponseStatus s) noexcept;

struct PlanResponse {
  std::uint64_t seq = 0;
  ResponseStatus status = ResponseStatus::kOk;
  std::string message;  ///< busy/error reason; "" for ok
  std::string body;     ///< ok: the corun-schedule report text
};

// ---- payload forms -------------------------------------------------------

[[nodiscard]] std::string request_to_payload(const PlanRequest& request);
[[nodiscard]] Expected<PlanRequest> request_from_payload(
    const std::string& payload);

[[nodiscard]] std::string response_to_payload(const PlanResponse& response);
[[nodiscard]] Expected<PlanResponse> response_from_payload(
    const std::string& payload);

// ---- framing -------------------------------------------------------------

/// Upper bound on a single frame payload; a longer announced length is
/// treated as a protocol error rather than an allocation request.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 24;

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes and EINTR. Returns false on IO failure.
bool write_frame(int fd, const std::string& payload);

/// Reads one frame from `fd` (blocking). Returns the payload; an engaged
/// Expected holding nullopt means clean end-of-stream before any byte of
/// a frame. A torn frame (EOF mid-frame), an oversized length, or an IO
/// error is an Error.
[[nodiscard]] Expected<std::optional<std::string>> read_frame(int fd);

// ---- replay corpus -------------------------------------------------------

void request_trace_to_csv(const std::vector<PlanRequest>& requests,
                          std::ostream& out);
[[nodiscard]] Expected<std::vector<PlanRequest>> request_trace_from_csv(
    const std::string& text);
[[nodiscard]] Expected<std::vector<PlanRequest>> load_request_trace(
    const std::string& path);

}  // namespace corun::serve
