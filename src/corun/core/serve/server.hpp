// ServeSession: concurrent request planning with graceful degradation.
//
// The daemon's IO loop hands the session *chunks* — every request frame
// that was available on the transport when it went to plan (natural
// batching: a busy client pipelines, an idle one gets per-request
// latency). The session:
//
//   1. admits at most `queue_capacity` requests per chunk in arrival
//      order; the overflow is answered `busy` immediately — the bounded
//      queue that keeps a request storm from buffering unboundedly;
//   2. drops admitted requests whose age (now - arrival) already exceeds
//      `deadline_seconds` with `busy` — the per-request deadline that
//      keeps a cold-cache storm from turning into a multi-second hang;
//      the check runs right before planning starts, on the worker;
//   3. plans the remainder concurrently on the shared TaskPool (so
//      `--jobs` governs serving parallelism exactly as it governs every
//      other sweep), turning per-request failures into `error` responses
//      rather than daemon deaths;
//   4. emits every response of the chunk in ascending sequence-id order —
//      the deterministic response-assembly stage. Planned bodies are
//      byte-identical regardless of chunk composition, arrival
//      interleaving, or worker count (the plan-cache contract); only
//      busy/error triage depends on load and timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "corun/common/units.hpp"
#include "corun/core/serve/plan_service.hpp"
#include "corun/core/serve/protocol.hpp"

namespace corun::serve {

struct ServeOptions {
  std::size_t queue_capacity = 256;  ///< admitted requests per chunk
  Seconds deadline_seconds = 0.0;    ///< 0 = no per-request deadline
};

/// Monotonic session counters (single IO thread; read between chunks).
struct ServeStats {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
};

/// A parsed request plus its transport arrival time (the deadline clock).
struct TimedRequest {
  PlanRequest request;
  std::chrono::steady_clock::time_point arrival;
};

class ServeSession {
 public:
  ServeSession(const PlanService& service, ServeOptions options);

  /// Serves one chunk; returns all its responses in ascending seq order
  /// (ties — duplicate client seqs — keep arrival order).
  [[nodiscard]] std::vector<PlanResponse> serve_chunk(
      std::vector<TimedRequest> chunk);

  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }

 private:
  const PlanService* service_;
  ServeOptions options_;
  ServeStats stats_;
};

}  // namespace corun::serve
