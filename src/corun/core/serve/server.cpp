#include "corun/core/serve/server.hpp"

#include <algorithm>
#include <exception>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"

namespace corun::serve {

namespace {

PlanResponse make_response(std::uint64_t seq, ResponseStatus status,
                           std::string message, std::string body = {}) {
  PlanResponse response;
  response.seq = seq;
  response.status = status;
  response.message = std::move(message);
  response.body = std::move(body);
  return response;
}

PlanResponse make_busy(std::uint64_t seq, std::string reason) {
  return make_response(seq, ResponseStatus::kBusy, std::move(reason));
}

}  // namespace

ServeSession::ServeSession(const PlanService& service, ServeOptions options)
    : service_(&service), options_(options) {
  CORUN_CHECK_MSG(options_.queue_capacity > 0,
                  "serve queue capacity must be > 0");
}

std::vector<PlanResponse> ServeSession::serve_chunk(
    std::vector<TimedRequest> chunk) {
  CORUN_TRACE_SPAN("serve", "serve.chunk");
  stats_.received += chunk.size();
  std::vector<PlanResponse> responses;
  responses.reserve(chunk.size());

  // Bounded queue: arrival order decides who gets a slot; the rest are
  // answered busy without buffering further.
  std::vector<TimedRequest> admitted;
  admitted.reserve(std::min(chunk.size(), options_.queue_capacity));
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (i < options_.queue_capacity) {
      admitted.push_back(std::move(chunk[i]));
    } else {
      responses.push_back(make_busy(chunk[i].request.seq, "queue full"));
    }
  }

  const Seconds deadline = options_.deadline_seconds;
  auto planned = common::TaskPool::shared().parallel_map<PlanResponse>(
      admitted.size(), [&](std::size_t i) -> PlanResponse {
        const TimedRequest& timed = admitted[i];
        const std::uint64_t seq = timed.request.seq;
        if (deadline > 0.0) {
          const Seconds age = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  timed.arrival)
                                  .count();
          if (age > deadline) return make_busy(seq, "deadline exceeded");
        }
        try {
          auto result = service_->plan(timed.request);
          if (!result.has_value()) {
            return make_response(seq, ResponseStatus::kError,
                                 result.error().message);
          }
          return make_response(seq, ResponseStatus::kOk, "",
                               std::move(result).value().text);
        } catch (const std::exception& e) {
          // A planner contract violation on one request must degrade to an
          // error response, never take the daemon down.
          return make_response(seq, ResponseStatus::kError, e.what());
        }
      });
  for (PlanResponse& response : planned) {
    responses.push_back(std::move(response));
  }

  for (const PlanResponse& response : responses) {
    switch (response.status) {
      case ResponseStatus::kOk: ++stats_.ok; break;
      case ResponseStatus::kBusy: ++stats_.busy; break;
      case ResponseStatus::kError: ++stats_.errors; break;
    }
  }

  // Response assembly: ascending seq, stable so duplicate client seqs keep
  // arrival order. Emission order is then independent of which worker
  // finished first.
  std::stable_sort(responses.begin(), responses.end(),
                   [](const PlanResponse& a, const PlanResponse& b) {
                     return a.seq < b.seq;
                   });
  return responses;
}

}  // namespace corun::serve
