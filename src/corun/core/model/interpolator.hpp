// Staged interpolation over the degradation space (Sec. V-C).
//
// Stage 1 (offline, once per machine): the micro-benchmark characterizes the
// degradation surfaces — see DegradationSpaceBuilder.
// Stage 2 (per prediction): a real program pair is located inside the space
// by the standalone average bandwidths of its two sides at their current
// frequencies, and each side's degradation is read off by bilinear
// interpolation. This replaces O(N^2 K^2) pairwise profiling with O(N K)
// standalone profiles plus one grid.
#pragma once

#include "corun/common/units.hpp"
#include "corun/core/model/degradation_space.hpp"

namespace corun::model {

class StagedInterpolator {
 public:
  explicit StagedInterpolator(DegradationGrid grid);

  /// Degradation of the CPU-side program whose standalone bandwidth is
  /// `cpu_bw` when the GPU side offers `gpu_bw`. Inputs are clamped to the
  /// characterized range.
  [[nodiscard]] double cpu_degradation(GBps cpu_bw, GBps gpu_bw) const;

  /// Degradation of the GPU-side program, same coordinates.
  [[nodiscard]] double gpu_degradation(GBps cpu_bw, GBps gpu_bw) const;

  [[nodiscard]] const DegradationGrid& grid() const noexcept { return grid_; }

 private:
  [[nodiscard]] double interpolate(
      const std::vector<std::vector<double>>& surface, GBps cpu_bw,
      GBps gpu_bw) const;

  DegradationGrid grid_;
};

}  // namespace corun::model
