#include "corun/core/model/power_predictor.hpp"

#include "corun/common/check.hpp"

namespace corun::model {

PowerPredictor::PowerPredictor(const profile::ProfileDB& db) : db_(db) {
  CORUN_CHECK_MSG(db.idle_power() > 0.0,
                  "profile DB lacks the idle-power measurement");
}

Watts PowerPredictor::standalone(const std::string& job, sim::DeviceKind device,
                                 sim::FreqLevel level) const {
  return db_.at(job, device, level).avg_power;
}

Watts PowerPredictor::predict_corun(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level) const {
  const Watts p_cpu = standalone(cpu_job, sim::DeviceKind::kCpu, cpu_level);
  const Watts p_gpu = standalone(gpu_job, sim::DeviceKind::kGpu, gpu_level);
  return p_cpu + p_gpu - db_.idle_power();
}

bool PowerPredictor::corun_feasible(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level, Watts cap) const {
  return predict_corun(cpu_job, cpu_level, gpu_job, gpu_level) <= cap;
}

bool PowerPredictor::solo_feasible(const std::string& job,
                                   sim::DeviceKind device, sim::FreqLevel level,
                                   Watts cap) const {
  return standalone(job, device, level) <= cap;
}

}  // namespace corun::model
