// Co-run power prediction (evaluated in Fig. 8 of the paper).
//
// The paper's observation: package power of a co-run is predicted well by
// combining the two standalone measurements at the same frequencies. Both
// standalone measurements include the package base power (uncore + idle
// domains), so the combination subtracts one idle-package term:
//   P_corun(A@fc, B@fg) ~= P_solo(A,cpu,fc) + P_solo(B,gpu,fg) - P_idle.
// The residual error comes from contention shifting stall/compute ratios —
// the paper measured 1.92% average error, never above 8%.
#pragma once

#include <string>

#include "corun/common/units.hpp"
#include "corun/profile/profile_db.hpp"
#include "corun/sim/frequency.hpp"

namespace corun::model {

class PowerPredictor {
 public:
  /// `db` must outlive the predictor and contain the referenced profiles.
  explicit PowerPredictor(const profile::ProfileDB& db);

  /// Standalone package power of `job` on `device` at `level` (profiled).
  [[nodiscard]] Watts standalone(const std::string& job, sim::DeviceKind device,
                                 sim::FreqLevel level) const;

  /// Predicted co-run package power.
  [[nodiscard]] Watts predict_corun(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level) const;

  /// True when the predicted co-run power fits under `cap`.
  [[nodiscard]] bool corun_feasible(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level, Watts cap) const;

  /// True when the standalone power fits under `cap`.
  [[nodiscard]] bool solo_feasible(const std::string& job,
                                   sim::DeviceKind device, sim::FreqLevel level,
                                   Watts cap) const;

 private:
  const profile::ProfileDB& db_;
};

}  // namespace corun::model
