// Co-run degradation space characterization (Sec. V-B).
//
// The builder co-runs the Figure-4 micro-benchmark against itself across an
// 11x11 grid of standalone-bandwidth settings (0..11 GB/s per device) and
// records, for each cell, how much the CPU-side and GPU-side instances
// degrade. To measure the *pure* co-run rate (not diluted by the partner
// finishing first), the partner instance is made several times longer than
// the subject, so the subject is contended for its entire run — the
// standard looping-co-runner methodology.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/common/units.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/machine.hpp"

namespace corun::model {

/// The characterized degradation surfaces. Axis values are the standalone
/// achieved bandwidths of the micro-benchmark settings (GB/s).
struct DegradationGrid {
  std::vector<GBps> cpu_axis;  ///< CPU-side micro settings
  std::vector<GBps> gpu_axis;  ///< GPU-side micro settings
  /// cpu_deg[i][j] = fractional slowdown of the CPU-side micro at
  /// cpu_axis[i] when co-running with the GPU-side micro at gpu_axis[j].
  std::vector<std::vector<double>> cpu_deg;
  /// gpu_deg[i][j], same indexing (i = CPU axis, j = GPU axis).
  std::vector<std::vector<double>> gpu_deg;

  [[nodiscard]] bool valid() const noexcept;
  [[nodiscard]] double max_cpu_degradation() const;
  [[nodiscard]] double max_gpu_degradation() const;

  /// CSV round trip (one row per cell) for caching characterizations.
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static Expected<DegradationGrid> read_csv(const std::string& text);
};

struct CharacterizationOptions {
  std::uint64_t seed = 42;
  Seconds subject_duration = 25.0;  ///< length of the measured instance
  double partner_scale = 4.0;       ///< partner runs this much longer
  /// Stepping policy of every cell's co-run engine.
  sim::EngineMode engine_mode = sim::default_engine_mode();
  /// Machine backend the characterization cells run on.
  sim::BackendSpec backend = sim::default_backend_spec();
};

/// Runs the characterization experiment on the simulator.
class DegradationSpaceBuilder {
 public:
  DegradationSpaceBuilder(sim::MachineConfig config,
                          CharacterizationOptions options = {});

  /// Full 11x11 (or custom-axis) characterization at max frequencies.
  [[nodiscard]] DegradationGrid characterize() const;
  [[nodiscard]] DegradationGrid characterize(std::vector<GBps> cpu_axis,
                                             std::vector<GBps> gpu_axis) const;

  /// Measures one cell: degradation of the subject on `subject_device`
  /// running at `subject_bw` against a long-running partner at `partner_bw`.
  [[nodiscard]] double measure_cell(sim::DeviceKind subject_device,
                                    GBps subject_bw, GBps partner_bw) const;

 private:
  sim::MachineConfig config_;
  CharacterizationOptions options_;
};

}  // namespace corun::model
