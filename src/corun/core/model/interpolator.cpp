#include "corun/core/model/interpolator.hpp"

#include <algorithm>

#include "corun/common/check.hpp"

namespace corun::model {
namespace {

/// Finds the cell [k, k+1] containing v (clamped) and the fractional
/// position within it.
struct AxisPos {
  std::size_t lo;
  std::size_t hi;
  double frac;
};

AxisPos locate(const std::vector<double>& axis, double v) {
  CORUN_CHECK(axis.size() >= 1);
  if (axis.size() == 1 || v <= axis.front()) return {0, 0, 0.0};
  if (v >= axis.back()) return {axis.size() - 1, axis.size() - 1, 0.0};
  // Binary search for the first knot > v; the clamps above guarantee
  // axis.front() < v < axis.back(), so hi lands in [1, size - 1]. On an
  // axis with duplicated knots this picks the rightmost duplicate's cell
  // (right-continuous), and the zero-span guard keeps frac finite.
  const std::size_t hi = static_cast<std::size_t>(
      std::upper_bound(axis.begin(), axis.end(), v) - axis.begin());
  const std::size_t lo = hi - 1;
  const double span = axis[hi] - axis[lo];
  return {lo, hi, span > 0.0 ? (v - axis[lo]) / span : 0.0};
}

}  // namespace

StagedInterpolator::StagedInterpolator(DegradationGrid grid)
    : grid_(std::move(grid)) {
  CORUN_CHECK_MSG(grid_.valid(), "degradation grid is malformed");
  CORUN_CHECK(std::is_sorted(grid_.cpu_axis.begin(), grid_.cpu_axis.end()));
  CORUN_CHECK(std::is_sorted(grid_.gpu_axis.begin(), grid_.gpu_axis.end()));
}

double StagedInterpolator::interpolate(
    const std::vector<std::vector<double>>& surface, GBps cpu_bw,
    GBps gpu_bw) const {
  const AxisPos ci = locate(grid_.cpu_axis, cpu_bw);
  const AxisPos gj = locate(grid_.gpu_axis, gpu_bw);
  const double d00 = surface[ci.lo][gj.lo];
  const double d01 = surface[ci.lo][gj.hi];
  const double d10 = surface[ci.hi][gj.lo];
  const double d11 = surface[ci.hi][gj.hi];
  const double lo = d00 * (1.0 - gj.frac) + d01 * gj.frac;
  const double hi = d10 * (1.0 - gj.frac) + d11 * gj.frac;
  return lo * (1.0 - ci.frac) + hi * ci.frac;
}

double StagedInterpolator::cpu_degradation(GBps cpu_bw, GBps gpu_bw) const {
  return interpolate(grid_.cpu_deg, cpu_bw, gpu_bw);
}

double StagedInterpolator::gpu_degradation(GBps cpu_bw, GBps gpu_bw) const {
  return interpolate(grid_.gpu_deg, cpu_bw, gpu_bw);
}

}  // namespace corun::model
