#include "corun/core/model/degradation_space.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/sim/engine.hpp"
#include "corun/workload/microbench.hpp"

namespace corun::model {

bool DegradationGrid::valid() const noexcept {
  if (cpu_axis.empty() || gpu_axis.empty()) return false;
  if (cpu_deg.size() != cpu_axis.size() || gpu_deg.size() != cpu_axis.size()) {
    return false;
  }
  for (const auto& row : cpu_deg) {
    if (row.size() != gpu_axis.size()) return false;
  }
  for (const auto& row : gpu_deg) {
    if (row.size() != gpu_axis.size()) return false;
  }
  return true;
}

double DegradationGrid::max_cpu_degradation() const {
  CORUN_CHECK(valid());
  double best = 0.0;
  for (const auto& row : cpu_deg) {
    for (double d : row) best = std::max(best, d);
  }
  return best;
}

double DegradationGrid::max_gpu_degradation() const {
  CORUN_CHECK(valid());
  double best = 0.0;
  for (const auto& row : gpu_deg) {
    for (double d : row) best = std::max(best, d);
  }
  return best;
}

void DegradationGrid::write_csv(std::ostream& out) const {
  CORUN_CHECK(valid());
  CsvWriter writer(out);
  writer.write_row({"cpu_bw", "gpu_bw", "cpu_deg", "gpu_deg"});
  for (std::size_t i = 0; i < cpu_axis.size(); ++i) {
    for (std::size_t j = 0; j < gpu_axis.size(); ++j) {
      writer.write_row({std::to_string(cpu_axis[i]), std::to_string(gpu_axis[j]),
                        std::to_string(cpu_deg[i][j]),
                        std::to_string(gpu_deg[i][j])});
    }
  }
}

Expected<DegradationGrid> DegradationGrid::read_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  DegradationGrid grid;
  bool header = true;
  std::vector<std::tuple<double, double, double, double>> cells;
  for (const auto& row : rows.value()) {
    if (header) {
      header = false;
      continue;
    }
    if (row.size() != 4) return fail("grid CSV row arity != 4", ErrorCategory::kParse);
    try {
      cells.emplace_back(std::stod(row[0]), std::stod(row[1]),
                         std::stod(row[2]), std::stod(row[3]));
    } catch (const std::exception& ex) {
      return fail(std::string("grid CSV parse error: ") + ex.what(), ErrorCategory::kParse);
    }
  }
  if (cells.empty()) return fail("grid CSV has no cells", ErrorCategory::kParse);
  for (const auto& [cb, gb, cd, gd] : cells) {
    if (grid.cpu_axis.empty() || grid.cpu_axis.back() != cb) {
      if (std::find(grid.cpu_axis.begin(), grid.cpu_axis.end(), cb) ==
          grid.cpu_axis.end()) {
        grid.cpu_axis.push_back(cb);
      }
    }
    if (std::find(grid.gpu_axis.begin(), grid.gpu_axis.end(), gb) ==
        grid.gpu_axis.end()) {
      grid.gpu_axis.push_back(gb);
    }
  }
  std::sort(grid.cpu_axis.begin(), grid.cpu_axis.end());
  std::sort(grid.gpu_axis.begin(), grid.gpu_axis.end());
  grid.cpu_deg.assign(grid.cpu_axis.size(),
                      std::vector<double>(grid.gpu_axis.size(), 0.0));
  grid.gpu_deg = grid.cpu_deg;
  auto index_of = [](const std::vector<double>& axis, double v) {
    return static_cast<std::size_t>(
        std::find(axis.begin(), axis.end(), v) - axis.begin());
  };
  for (const auto& [cb, gb, cd, gd] : cells) {
    const std::size_t i = index_of(grid.cpu_axis, cb);
    const std::size_t j = index_of(grid.gpu_axis, gb);
    if (i >= grid.cpu_axis.size() || j >= grid.gpu_axis.size()) {
      return fail("grid CSV inconsistent axes", ErrorCategory::kParse);
    }
    grid.cpu_deg[i][j] = cd;
    grid.gpu_deg[i][j] = gd;
  }
  if (!grid.valid()) return fail("grid CSV did not form a full grid", ErrorCategory::kParse);
  return grid;
}

DegradationSpaceBuilder::DegradationSpaceBuilder(sim::MachineConfig config,
                                                 CharacterizationOptions options)
    : config_(std::move(config)), options_(options) {
  CORUN_CHECK(options_.subject_duration > 0.0);
  CORUN_CHECK(options_.partner_scale > 1.0);
}

double DegradationSpaceBuilder::measure_cell(sim::DeviceKind subject_device,
                                             GBps subject_bw,
                                             GBps partner_bw) const {
  const auto subject_desc =
      workload::micro_kernel(subject_bw, options_.subject_duration);
  const auto partner_desc = workload::micro_kernel(
      partner_bw, options_.subject_duration * options_.partner_scale);
  CORUN_CHECK(subject_desc.has_value() && partner_desc.has_value());

  const sim::JobSpec subject =
      workload::make_job_spec(subject_desc.value(), options_.seed);
  const sim::JobSpec partner =
      workload::make_job_spec(partner_desc.value(), options_.seed + 1);

  const sim::DeviceKind partner_device = sim::other_device(subject_device);

  // Standalone reference at max frequency. The event backend defers to
  // engine_mode (--engine tick|event); other backends measure through the
  // factory.
  const sim::StandaloneResult solo =
      options_.backend.kind == sim::BackendKind::kEvent
          ? sim::run_standalone(config_, subject, subject_device,
                                config_.cpu_ladder.max_level(),
                                config_.gpu_ladder.max_level(), options_.seed,
                                options_.engine_mode)
          : sim::run_standalone(config_, subject, subject_device,
                                config_.cpu_ladder.max_level(),
                                config_.gpu_ladder.max_level(), options_.seed,
                                options_.backend);

  // Contended run: partner outlives the subject, so the subject is under
  // co-run pressure for its entire execution.
  sim::EngineOptions engine_options;
  engine_options.mode = options_.engine_mode;
  engine_options.seed = options_.seed;
  engine_options.record_samples = false;
  const std::unique_ptr<sim::MachineModel> machine =
      sim::make_machine_model(config_, engine_options, options_.backend);
  sim::MachineModel& engine = *machine;
  engine.set_ceilings(config_.cpu_ladder.max_level(),
                      config_.gpu_ladder.max_level());
  engine.launch(partner, partner_device);
  const sim::JobId subject_id = engine.launch(subject, subject_device);
  while (!engine.stats(subject_id).finished) {
    const auto events = engine.run_until_event();
    CORUN_CHECK_MSG(!events.empty() || engine.idle(),
                    "engine stalled during characterization");
    if (engine.idle()) break;
  }
  const Seconds contended = engine.stats(subject_id).runtime();
  return std::max(0.0, (contended - solo.time) / solo.time);
}

DegradationGrid DegradationSpaceBuilder::characterize() const {
  return characterize(workload::micro_grid_levels(),
                      workload::micro_grid_levels());
}

DegradationGrid DegradationSpaceBuilder::characterize(
    std::vector<GBps> cpu_axis, std::vector<GBps> gpu_axis) const {
  CORUN_CHECK(!cpu_axis.empty() && !gpu_axis.empty());
  DegradationGrid grid;
  grid.cpu_axis = std::move(cpu_axis);
  grid.gpu_axis = std::move(gpu_axis);
  grid.cpu_deg.assign(grid.cpu_axis.size(),
                      std::vector<double>(grid.gpu_axis.size(), 0.0));
  grid.gpu_deg = grid.cpu_deg;
  // One task per grid cell (two co-runs each). Every cell is a fixed-seed
  // simulation writing its own pair of slots, so the grid — and the CSV
  // artifact — is byte-identical whatever the worker count.
  const std::size_t cols = grid.gpu_axis.size();
  common::TaskPool::shared().parallel_for_index(
      grid.cpu_axis.size() * cols, [&](std::size_t cell) {
        const std::size_t i = cell / cols;
        const std::size_t j = cell % cols;
        grid.cpu_deg[i][j] = measure_cell(sim::DeviceKind::kCpu,
                                          grid.cpu_axis[i], grid.gpu_axis[j]);
        grid.gpu_deg[i][j] = measure_cell(sim::DeviceKind::kGpu,
                                          grid.gpu_axis[j], grid.cpu_axis[i]);
      });
  return grid;
}

}  // namespace corun::model
