#include "corun/core/model/corun_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <vector>

#include "corun/common/check.hpp"
#include "corun/common/trace/trace.hpp"

namespace corun::model {

bool default_analytic_tables() {
  static const bool value = [] {
    const char* env = std::getenv("CORUN_ANALYTIC_EVAL");
    if (env == nullptr) return true;
    const std::string_view v(env);
    return !(v == "0" || v == "off" || v == "false");
  }();
  return value;
}

/// The dense analytic tables. Rows exist only for (job, device) pairs the
/// DB has profiles for; everything else falls back to the legacy on-demand
/// path. Cells are computed with the exact legacy arithmetic (entry_at +
/// staged interpolation), so a table answer and a fallback answer are the
/// same bits.
struct CoRunPredictor::AnalyticCore {
  std::unordered_map<std::string, std::size_t> cpu_index;  ///< job -> row
  std::unordered_map<std::string, std::size_t> gpu_index;
  std::size_t cpu_levels = 0;  ///< ladder size (max_level + 1)
  std::size_t gpu_levels = 0;
  std::vector<profile::ProfileEntry> cpu_entries;  ///< [row][level]
  std::vector<profile::ProfileEntry> gpu_entries;
  std::vector<PairPrediction> pairs;  ///< [cpu row][cl][gpu row][gl]

  [[nodiscard]] const profile::ProfileEntry* entry(
      sim::DeviceKind device, const std::string& job,
      sim::FreqLevel level) const {
    const bool cpu = device == sim::DeviceKind::kCpu;
    const std::size_t n = cpu ? cpu_levels : gpu_levels;
    if (level < 0 || static_cast<std::size_t>(level) >= n) return nullptr;
    const auto& index = cpu ? cpu_index : gpu_index;
    const auto it = index.find(job);
    if (it == index.end()) return nullptr;
    const auto& entries = cpu ? cpu_entries : gpu_entries;
    return &entries[it->second * n + static_cast<std::size_t>(level)];
  }

  [[nodiscard]] const PairPrediction* pair(const std::string& cpu_job,
                                           sim::FreqLevel cpu_level,
                                           const std::string& gpu_job,
                                           sim::FreqLevel gpu_level) const {
    if (cpu_level < 0 ||
        static_cast<std::size_t>(cpu_level) >= cpu_levels ||
        gpu_level < 0 || static_cast<std::size_t>(gpu_level) >= gpu_levels) {
      return nullptr;
    }
    const auto ci = cpu_index.find(cpu_job);
    if (ci == cpu_index.end()) return nullptr;
    const auto gi = gpu_index.find(gpu_job);
    if (gi == gpu_index.end()) return nullptr;
    const std::size_t idx =
        ((ci->second * cpu_levels + static_cast<std::size_t>(cpu_level)) *
             gpu_index.size() +
         gi->second) *
            gpu_levels +
        static_cast<std::size_t>(gpu_level);
    return &pairs[idx];
  }
};

CoRunPredictor::CoRunPredictor(const profile::ProfileDB& db,
                               DegradationGrid grid, sim::MachineConfig config,
                               PredictorOptions options)
    : db_(db),
      interp_(std::move(grid)),
      config_(std::move(config)),
      options_(options) {
  CORUN_CHECK_MSG(db_.idle_power() > 0.0,
                  "profile DB lacks the idle-power measurement");
}

CoRunPredictor::CoRunPredictor(const CoRunPredictor& other,
                               PredictorOptions options)
    : db_(other.db_),
      interp_(other.interp_),
      config_(other.config_),
      options_(options) {}

CoRunPredictor::~CoRunPredictor() {
  const std::uint64_t hits = analytic_hits_.load(std::memory_order_relaxed);
  if (hits != 0) {
    trace::counter_add("backend.analytic_hits", static_cast<double>(hits));
  }
}

std::unique_ptr<CoRunPredictor::AnalyticCore> CoRunPredictor::build_core()
    const {
  auto core = std::make_unique<AnalyticCore>();
  core->cpu_levels =
      static_cast<std::size_t>(config_.cpu_ladder.max_level()) + 1;
  core->gpu_levels =
      static_cast<std::size_t>(config_.gpu_ladder.max_level()) + 1;
  for (const std::string& job : db_.jobs()) {
    for (const sim::DeviceKind device :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      if (db_.levels(job, device).empty()) continue;
      const bool cpu = device == sim::DeviceKind::kCpu;
      auto& index = cpu ? core->cpu_index : core->gpu_index;
      auto& entries = cpu ? core->cpu_entries : core->gpu_entries;
      const std::size_t n = cpu ? core->cpu_levels : core->gpu_levels;
      index.emplace(job, index.size());
      for (std::size_t l = 0; l < n; ++l) {
        entries.push_back(
            entry_at(job, device, static_cast<sim::FreqLevel>(l)));
      }
    }
  }
  const std::size_t n_cpu = core->cpu_index.size();
  const std::size_t n_gpu = core->gpu_index.size();
  core->pairs.resize(n_cpu * core->cpu_levels * n_gpu * core->gpu_levels);
  std::size_t idx = 0;
  // Row order follows entry storage, which follows the insertion order of
  // the index maps (db_.jobs() is sorted, so the layout is deterministic).
  for (std::size_t ci = 0; ci < n_cpu; ++ci) {
    for (std::size_t cl = 0; cl < core->cpu_levels; ++cl) {
      const profile::ProfileEntry& ce =
          core->cpu_entries[ci * core->cpu_levels + cl];
      for (std::size_t gi = 0; gi < n_gpu; ++gi) {
        for (std::size_t gl = 0; gl < core->gpu_levels; ++gl) {
          const profile::ProfileEntry& ge =
              core->gpu_entries[gi * core->gpu_levels + gl];
          PairPrediction& p = core->pairs[idx++];
          p.cpu_degradation = interp_.cpu_degradation(ce.avg_bw, ge.avg_bw);
          p.gpu_degradation = interp_.gpu_degradation(ce.avg_bw, ge.avg_bw);
          p.cpu_solo_time = ce.time;
          p.gpu_solo_time = ge.time;
          p.cpu_time = ce.time * (1.0 + p.cpu_degradation);
          p.gpu_time = ge.time * (1.0 + p.gpu_degradation);
          p.power = ce.avg_power + ge.avg_power - db_.idle_power();
        }
      }
    }
  }
  return core;
}

const CoRunPredictor::AnalyticCore* CoRunPredictor::analytic_core() const {
  if (!options_.analytic_tables) return nullptr;
  if (const AnalyticCore* core = core_.load(std::memory_order_acquire)) {
    return core;
  }
  const std::lock_guard<std::mutex> lock(core_mutex_);
  if (const AnalyticCore* core = core_.load(std::memory_order_relaxed)) {
    return core;
  }
  core_storage_ = build_core();
  core_.store(core_storage_.get(), std::memory_order_release);
  return core_storage_.get();
}

void CoRunPredictor::count_analytic_hit() const {
  // The tally only feeds the backend.analytic_hits trace counter; skip the
  // shared-cache-line increment entirely when tracing is off.
  if (trace::enabled()) {
    analytic_hits_.fetch_add(1, std::memory_order_relaxed);
  }
}

profile::ProfileEntry CoRunPredictor::entry_at(const std::string& job,
                                               sim::DeviceKind device,
                                               sim::FreqLevel level) const {
  if (db_.contains(job, device, level)) {
    return db_.at(job, device, level);
  }
  // Sub-sampled DB: interpolate between the nearest recorded levels by
  // frequency. Extrapolation is clamped to the recorded range.
  const auto levels = db_.levels(job, device);
  CORUN_CHECK_MSG(!levels.empty(), "no profiles for " + job);
  const sim::FrequencyLadder& ladder = config_.ladder(device);
  const GHz f = ladder.at(ladder.clamp(level));

  const profile::ProfileEntry* lo = nullptr;
  const profile::ProfileEntry* hi = nullptr;
  GHz f_lo = 0.0;
  GHz f_hi = 0.0;
  for (const sim::FreqLevel l : levels) {
    const GHz fl = ladder.at(l);
    const profile::ProfileEntry& e = db_.at(job, device, l);
    if (fl <= f && (lo == nullptr || fl > f_lo)) {
      lo = &e;
      f_lo = fl;
    }
    if (fl >= f && (hi == nullptr || fl < f_hi)) {
      hi = &e;
      f_hi = fl;
    }
  }
  if (lo == nullptr) return *hi;
  if (hi == nullptr) return *lo;
  if (f_hi <= f_lo) return *lo;
  const double t = (f - f_lo) / (f_hi - f_lo);
  auto lerp = [t](double a, double b) { return a * (1.0 - t) + b * t; };
  return profile::ProfileEntry{.time = lerp(lo->time, hi->time),
                               .avg_bw = lerp(lo->avg_bw, hi->avg_bw),
                               .avg_power = lerp(lo->avg_power, hi->avg_power),
                               .energy = lerp(lo->energy, hi->energy)};
}

Seconds CoRunPredictor::standalone_time(const std::string& job,
                                        sim::DeviceKind device,
                                        sim::FreqLevel level) const {
  if (const AnalyticCore* core = analytic_core()) {
    if (const profile::ProfileEntry* e = core->entry(device, job, level)) {
      count_analytic_hit();
      return e->time;
    }
  }
  return entry_at(job, device, level).time;
}

GBps CoRunPredictor::standalone_bw(const std::string& job,
                                   sim::DeviceKind device,
                                   sim::FreqLevel level) const {
  if (const AnalyticCore* core = analytic_core()) {
    if (const profile::ProfileEntry* e = core->entry(device, job, level)) {
      count_analytic_hit();
      return e->avg_bw;
    }
  }
  return entry_at(job, device, level).avg_bw;
}

Watts CoRunPredictor::standalone_power(const std::string& job,
                                       sim::DeviceKind device,
                                       sim::FreqLevel level) const {
  if (const AnalyticCore* core = analytic_core()) {
    if (const profile::ProfileEntry* e = core->entry(device, job, level)) {
      count_analytic_hit();
      return e->avg_power;
    }
  }
  return entry_at(job, device, level).avg_power;
}

PairPrediction CoRunPredictor::predict(const std::string& cpu_job,
                                       sim::FreqLevel cpu_level,
                                       const std::string& gpu_job,
                                       sim::FreqLevel gpu_level) const {
  if (const AnalyticCore* core = analytic_core()) {
    if (const PairPrediction* p =
            core->pair(cpu_job, cpu_level, gpu_job, gpu_level)) {
      count_analytic_hit();
      return *p;
    }
  }
  const profile::ProfileEntry cpu_entry =
      entry_at(cpu_job, sim::DeviceKind::kCpu, cpu_level);
  const profile::ProfileEntry gpu_entry =
      entry_at(gpu_job, sim::DeviceKind::kGpu, gpu_level);

  PairPrediction out;
  out.cpu_degradation =
      interp_.cpu_degradation(cpu_entry.avg_bw, gpu_entry.avg_bw);
  out.gpu_degradation =
      interp_.gpu_degradation(cpu_entry.avg_bw, gpu_entry.avg_bw);
  out.cpu_solo_time = cpu_entry.time;
  out.gpu_solo_time = gpu_entry.time;
  out.cpu_time = cpu_entry.time * (1.0 + out.cpu_degradation);
  out.gpu_time = gpu_entry.time * (1.0 + out.gpu_degradation);
  out.power = cpu_entry.avg_power + gpu_entry.avg_power - db_.idle_power();
  return out;
}

Watts CoRunPredictor::predict_power(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level) const {
  if (const AnalyticCore* core = analytic_core()) {
    const profile::ProfileEntry* ce =
        core->entry(sim::DeviceKind::kCpu, cpu_job, cpu_level);
    const profile::ProfileEntry* ge =
        core->entry(sim::DeviceKind::kGpu, gpu_job, gpu_level);
    if (ce != nullptr && ge != nullptr) {
      count_analytic_hit();
      return ce->avg_power + ge->avg_power - db_.idle_power();
    }
  }
  return standalone_power(cpu_job, sim::DeviceKind::kCpu, cpu_level) +
         standalone_power(gpu_job, sim::DeviceKind::kGpu, gpu_level) -
         db_.idle_power();
}

bool CoRunPredictor::corun_feasible(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level,
                                    std::optional<Watts> cap) const {
  if (!cap) return true;
  return predict_power(cpu_job, cpu_level, gpu_job, gpu_level) <= *cap;
}

bool CoRunPredictor::solo_feasible(const std::string& job,
                                   sim::DeviceKind device, sim::FreqLevel level,
                                   std::optional<Watts> cap) const {
  if (!cap) return true;
  return standalone_power(job, device, level) <= *cap;
}

std::optional<sim::FreqLevel> CoRunPredictor::best_solo_level(
    const std::string& job, sim::DeviceKind device,
    std::optional<Watts> cap) const {
  const sim::FrequencyLadder& ladder = config_.ladder(device);
  std::optional<sim::FreqLevel> best;
  Seconds best_time = std::numeric_limits<Seconds>::infinity();
  for (sim::FreqLevel l = 0; l <= ladder.max_level(); ++l) {
    if (!solo_feasible(job, device, l, cap)) continue;
    const Seconds t = standalone_time(job, device, l);
    if (t < best_time) {
      best_time = t;
      best = l;
    }
  }
  return best;
}

Seconds CoRunPredictor::best_solo_time(const std::string& job,
                                       sim::DeviceKind device,
                                       std::optional<Watts> cap) const {
  const auto level = best_solo_level(job, device, cap);
  CORUN_CHECK_MSG(level.has_value(),
                  "no cap-feasible standalone level for " + job);
  return standalone_time(job, device, *level);
}

Seconds CoRunPredictor::min_corun_time(const std::string& job,
                                       sim::DeviceKind device,
                                       const std::string& partner,
                                       std::optional<Watts> cap,
                                       bool include_floor_pair) const {
  // Exact cap rendering (%.17g, not a quantized bucket): the minimum feeds
  // admissible lower bounds, where serving a neighbouring cap's value would
  // silently change pruning decisions.
  char cap_buf[64];
  if (cap) {
    std::snprintf(cap_buf, sizeof(cap_buf), "%.17g", *cap);
  } else {
    std::snprintf(cap_buf, sizeof(cap_buf), "none");
  }
  std::string key = job;
  key += device == sim::DeviceKind::kCpu ? "|c|" : "|g|";
  key += partner;
  key += '|';
  key += cap_buf;
  key += include_floor_pair ? "|f" : "|s";
  {
    const std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    if (const auto it = corun_min_cache_.find(key);
        it != corun_min_cache_.end()) {
      return it->second;
    }
  }

  const std::string& cpu_job = device == sim::DeviceKind::kCpu ? job : partner;
  const std::string& gpu_job = device == sim::DeviceKind::kCpu ? partner : job;
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (sim::FreqLevel fc = 0; fc <= config_.cpu_ladder.max_level(); ++fc) {
    for (sim::FreqLevel fg = 0; fg <= config_.gpu_ladder.max_level(); ++fg) {
      if (!corun_feasible(cpu_job, fc, gpu_job, fg, cap) &&
          !(include_floor_pair && fc == 0 && fg == 0)) {
        continue;
      }
      const PairPrediction p = predict(cpu_job, fc, gpu_job, fg);
      best = std::min(best,
                      device == sim::DeviceKind::kCpu ? p.cpu_time : p.gpu_time);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    corun_min_cache_.emplace(std::move(key), best);
  }
  return best;
}

std::optional<FreqPair> CoRunPredictor::best_pair_min_makespan(
    const std::string& cpu_job, const std::string& gpu_job,
    std::optional<Watts> cap) const {
  return best_pair_weighted(cpu_job, gpu_job, cap, 1.0, 1.0);
}

std::optional<FreqPair> CoRunPredictor::best_pair_weighted(
    const std::string& cpu_job, const std::string& gpu_job,
    std::optional<Watts> cap, double cpu_weight, double gpu_weight) const {
  CORUN_CHECK(cpu_weight > 0.0 && gpu_weight > 0.0);

  // Only the weight ratio matters; quantize it to quarter-octaves (clamped
  // to +-6 octaves) so repeated near-identical queries hit the memo cache.
  const double log_ratio =
      std::clamp(std::log2(gpu_weight / cpu_weight), -6.0, 6.0);
  const int bucket = static_cast<int>(std::lround(log_ratio * 4.0));
  const double wc = 1.0;
  const double wg = std::exp2(static_cast<double>(bucket) / 4.0);
  std::string key = cpu_job;
  key += '|';
  key += gpu_job;
  key += '|';
  key += std::to_string(
      cap ? static_cast<long long>(std::llround(*cap * 100.0)) : -1LL);
  key += '|';
  key += std::to_string(bucket);
  {
    const std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    if (const auto it = pair_cache_.find(key); it != pair_cache_.end()) {
      return it->second;
    }
  }
  const double cpu_weight_q = wc;
  const double gpu_weight_q = wg;

  std::optional<FreqPair> best;
  double best_metric = std::numeric_limits<double>::infinity();
  for (sim::FreqLevel fc = 0; fc <= config_.cpu_ladder.max_level(); ++fc) {
    for (sim::FreqLevel fg = 0; fg <= config_.gpu_ladder.max_level(); ++fg) {
      if (!corun_feasible(cpu_job, fc, gpu_job, fg, cap)) continue;
      const PairPrediction p = predict(cpu_job, fc, gpu_job, fg);
      // Tiny secondary objective: among near-equal maxima prefer the pair
      // that also finishes the lighter side sooner.
      const double metric =
          std::max(cpu_weight_q * p.cpu_time, gpu_weight_q * p.gpu_time) +
          1e-4 * (cpu_weight_q * p.cpu_time + gpu_weight_q * p.gpu_time);
      if (metric < best_metric) {
        best_metric = metric;
        best = FreqPair{fc, fg};
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    pair_cache_.emplace(std::move(key), best);
  }
  return best;
}

std::optional<FreqPair> CoRunPredictor::best_pair_min_degradation(
    const std::string& cpu_job, const std::string& gpu_job,
    std::optional<Watts> cap) const {
  std::optional<FreqPair> best;
  double best_metric = std::numeric_limits<double>::infinity();
  for (sim::FreqLevel fc = 0; fc <= config_.cpu_ladder.max_level(); ++fc) {
    for (sim::FreqLevel fg = 0; fg <= config_.gpu_ladder.max_level(); ++fg) {
      if (!corun_feasible(cpu_job, fc, gpu_job, fg, cap)) continue;
      const PairPrediction p = predict(cpu_job, fc, gpu_job, fg);
      // Among equal degradations prefer the higher-frequency (faster) pair;
      // folding a small negative frequency bonus into the metric does that
      // without a separate tie-break pass.
      const double freq_bonus =
          1e-3 * (config_.cpu_ladder.fraction(fc) + config_.gpu_ladder.fraction(fg));
      const double metric = p.cpu_degradation + p.gpu_degradation - freq_bonus;
      if (metric < best_metric) {
        best_metric = metric;
        best = FreqPair{fc, fg};
      }
    }
  }
  return best;
}

std::optional<sim::FreqLevel> CoRunPredictor::best_level_against(
    const std::string& job, sim::DeviceKind device, const std::string& partner,
    sim::FreqLevel partner_level, std::optional<Watts> cap) const {
  const sim::FrequencyLadder& ladder = config_.ladder(device);
  std::optional<sim::FreqLevel> best;
  double best_time = std::numeric_limits<double>::infinity();
  for (sim::FreqLevel l = 0; l <= ladder.max_level(); ++l) {
    const std::string& cpu_job = device == sim::DeviceKind::kCpu ? job : partner;
    const std::string& gpu_job = device == sim::DeviceKind::kCpu ? partner : job;
    const sim::FreqLevel fc = device == sim::DeviceKind::kCpu ? l : partner_level;
    const sim::FreqLevel fg = device == sim::DeviceKind::kCpu ? partner_level : l;
    if (!corun_feasible(cpu_job, fc, gpu_job, fg, cap)) continue;
    const PairPrediction p = predict(cpu_job, fc, gpu_job, fg);
    const double t = device == sim::DeviceKind::kCpu ? p.cpu_time : p.gpu_time;
    if (t < best_time) {
      best_time = t;
      best = l;
    }
  }
  return best;
}

}  // namespace corun::model
