// CoRunPredictor: the façade the scheduling algorithms consume.
//
// Combines the three information sources of Sec. V into one query surface:
//   - standalone profiles (time / bandwidth / power per job, device, level),
//     linearly interpolated across frequency when the DB was sub-sampled;
//   - the staged interpolator over the micro-benchmark degradation space;
//   - the standalone-sum power predictor.
// Everything the heuristic scheduler, the refinement pass, and the lower
// bound need — feasible frequency enumeration under a cap, best solo
// operating points, best co-run frequency pairs — lives here.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "corun/common/units.hpp"
#include "corun/core/model/interpolator.hpp"
#include "corun/profile/profile_db.hpp"
#include "corun/sim/machine.hpp"

namespace corun::model {

/// Default for PredictorOptions::analytic_tables: on, unless the
/// CORUN_ANALYTIC_EVAL environment variable is 0/off/false.
[[nodiscard]] bool default_analytic_tables();

/// Evaluation-backend knobs for the predictor.
struct PredictorOptions {
  /// Route the point queries (standalone_*, predict, predict_power) through
  /// dense cap-independent tables built once per predictor — the analytic
  /// evaluation fast path the search leans on. The table cells are computed
  /// by the exact legacy arithmetic (entry_at + staged interpolation), so
  /// every answer is byte-identical to the on-demand path; the toggle
  /// exists so A/B pinning (BranchAndBoundOptions::analytic_eval, the
  /// fidelity bench) can run both sides of that equality.
  bool analytic_tables = default_analytic_tables();
};

/// A CPU/GPU frequency operating point.
struct FreqPair {
  sim::FreqLevel cpu = 0;
  sim::FreqLevel gpu = 0;

  friend bool operator==(const FreqPair&, const FreqPair&) = default;
};

/// Full prediction for one co-running pair at one operating point.
struct PairPrediction {
  double cpu_degradation = 0.0;  ///< fractional slowdown of the CPU job
  double gpu_degradation = 0.0;
  Seconds cpu_solo_time = 0.0;   ///< standalone time at the pair's levels
  Seconds gpu_solo_time = 0.0;
  Seconds cpu_time = 0.0;        ///< solo * (1 + degradation): pure co-run rate
  Seconds gpu_time = 0.0;
  Watts power = 0.0;             ///< predicted package power of the co-run
};

class CoRunPredictor {
 public:
  /// `db` must outlive the predictor — and must not be mutated while the
  /// predictor is live (the analytic tables and the pair-search memos both
  /// snapshot DB-derived values; every caller that mutates its DB already
  /// rebuilds its predictor, see DynamicRuntime::rebuild_predictor).
  explicit CoRunPredictor(const profile::ProfileDB& db, DegradationGrid grid,
                          sim::MachineConfig config,
                          PredictorOptions options = {});

  /// Copy-view: a second predictor over the same DB/grid/machine with
  /// different evaluation options and fresh caches. Lets a search opt out
  /// of the analytic tables (analytic_eval=false) without re-profiling.
  CoRunPredictor(const CoRunPredictor& other, PredictorOptions options);

  ~CoRunPredictor();

  // --- standalone quantities (frequency-interpolated when sub-sampled) ---
  [[nodiscard]] Seconds standalone_time(const std::string& job,
                                        sim::DeviceKind device,
                                        sim::FreqLevel level) const;
  [[nodiscard]] GBps standalone_bw(const std::string& job,
                                   sim::DeviceKind device,
                                   sim::FreqLevel level) const;
  [[nodiscard]] Watts standalone_power(const std::string& job,
                                       sim::DeviceKind device,
                                       sim::FreqLevel level) const;

  // --- co-run prediction ---
  [[nodiscard]] PairPrediction predict(const std::string& cpu_job,
                                       sim::FreqLevel cpu_level,
                                       const std::string& gpu_job,
                                       sim::FreqLevel gpu_level) const;
  [[nodiscard]] Watts predict_power(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level) const;

  // --- power-cap feasibility ---
  [[nodiscard]] bool corun_feasible(const std::string& cpu_job,
                                    sim::FreqLevel cpu_level,
                                    const std::string& gpu_job,
                                    sim::FreqLevel gpu_level,
                                    std::optional<Watts> cap) const;
  [[nodiscard]] bool solo_feasible(const std::string& job,
                                   sim::DeviceKind device, sim::FreqLevel level,
                                   std::optional<Watts> cap) const;

  /// Fastest cap-feasible standalone operating point; nullopt if even the
  /// lowest level breaks the cap.
  [[nodiscard]] std::optional<sim::FreqLevel> best_solo_level(
      const std::string& job, sim::DeviceKind device,
      std::optional<Watts> cap) const;
  [[nodiscard]] Seconds best_solo_time(const std::string& job,
                                       sim::DeviceKind device,
                                       std::optional<Watts> cap) const;

  /// Minimum predicted `device`-side co-run time of `job` against
  /// `partner`, over every cap-feasible frequency pair — the least
  /// interference `partner` can inflict on `job` under the cap. With
  /// `include_floor_pair` the floor pair participates even when it
  /// violates the cap (the governor's tolerated last resort), which the
  /// search's admissible occupancy bound requires. Infinity when the
  /// candidate set is empty. Memoized: the lower bounds issue the same
  /// O(jobs^2) queries on every (re-)plan.
  [[nodiscard]] Seconds min_corun_time(const std::string& job,
                                       sim::DeviceKind device,
                                       const std::string& partner,
                                       std::optional<Watts> cap,
                                       bool include_floor_pair) const;

  /// Best cap-feasible frequency pair for a co-run, minimizing the pair's
  /// predicted completion bound max(cpu_time, gpu_time). nullopt when no
  /// pair is feasible.
  [[nodiscard]] std::optional<FreqPair> best_pair_min_makespan(
      const std::string& cpu_job, const std::string& gpu_job,
      std::optional<Watts> cap) const;

  /// Backlog-weighted pair selection: minimizes
  ///   max(cpu_weight * cpu_time, gpu_weight * gpu_time).
  /// The weights encode how much work queues behind each side (in multiples
  /// of the current job), so a device with a deep backlog keeps its share of
  /// the power budget instead of being throttled to balance one pair in
  /// isolation. Weights of 1 reduce to best_pair_min_makespan.
  [[nodiscard]] std::optional<FreqPair> best_pair_weighted(
      const std::string& cpu_job, const std::string& gpu_job,
      std::optional<Watts> cap, double cpu_weight, double gpu_weight) const;

  /// Best cap-feasible pair minimizing the summed degradations — the
  /// literal criterion of Sec. IV-A.2 step 3 (ablation comparator).
  [[nodiscard]] std::optional<FreqPair> best_pair_min_degradation(
      const std::string& cpu_job, const std::string& gpu_job,
      std::optional<Watts> cap) const;

  /// Best cap-feasible level for a job joining `device` while the partner is
  /// pinned at `partner_level` on the other device; minimizes the joining
  /// job's predicted co-run time.
  [[nodiscard]] std::optional<sim::FreqLevel> best_level_against(
      const std::string& job, sim::DeviceKind device,
      const std::string& partner, sim::FreqLevel partner_level,
      std::optional<Watts> cap) const;

  [[nodiscard]] const profile::ProfileDB& db() const noexcept { return db_; }
  [[nodiscard]] const StagedInterpolator& interpolator() const noexcept {
    return interp_;
  }
  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }
  [[nodiscard]] const PredictorOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Dense cap-independent tables: one ProfileEntry per profiled
  /// (job, device, level) and one PairPrediction per
  /// (cpu job, cpu level, gpu job, gpu level) cell. Built lazily on first
  /// query under core_mutex_ and published through an acquire/release
  /// pointer, so the parallel schedule searches race-freely share one copy.
  struct AnalyticCore;

  /// The published tables, building them on first use; nullptr when
  /// options_.analytic_tables is off.
  [[nodiscard]] const AnalyticCore* analytic_core() const;
  [[nodiscard]] std::unique_ptr<AnalyticCore> build_core() const;
  void count_analytic_hit() const;

  /// Linear interpolation of a profiled quantity across frequency.
  [[nodiscard]] profile::ProfileEntry entry_at(const std::string& job,
                                               sim::DeviceKind device,
                                               sim::FreqLevel level) const;

  const profile::ProfileDB& db_;
  StagedInterpolator interp_;
  sim::MachineConfig config_;
  PredictorOptions options_;

  mutable std::mutex core_mutex_;
  mutable std::unique_ptr<AnalyticCore> core_storage_;
  mutable std::atomic<const AnalyticCore*> core_{nullptr};
  mutable std::atomic<std::uint64_t> analytic_hits_{0};

  // Pair-search memoization. Only the weight *ratio* affects the argmin
  // (scaling both weights scales the whole metric), so the cache keys on
  // the log-ratio quantized to quarter-octaves — schedulers issue the same
  // queries thousands of times during refinement. The cache is a pure
  // function of (jobs, cap, ratio bucket), so concurrent fills from the
  // parallel schedule searches always agree on the value; the mutex only
  // protects the map structure (lookups and inserts are brief, the search
  // itself runs unlocked and may rarely be duplicated).
  mutable std::mutex pair_cache_mutex_;
  mutable std::unordered_map<std::string, std::optional<FreqPair>> pair_cache_;
  mutable std::unordered_map<std::string, Seconds> corun_min_cache_;
};

}  // namespace corun::model
