// Hierarchical power budgeting: dividing one datacenter-level cap across a
// fleet of simulated APUs.
//
// The paper enforces a single cap on a single integrated CPU-GPU node. At
// fleet scale the cap is a facility number (breaker panels, cooling, a
// colocation power contract) and must be subdivided node by node — the shape
// production managers like flux_pwr_manager use: a global budget split
// job -> node -> device with pluggable distribution strategies. This header
// is the node-level split: a PowerStrategy maps (global cap, per-machine
// demand) to per-machine caps which the fleet runtime then installs through
// each machine's ordinary set_power_cap path.
//
// Strategy contract (pinned by tests/fleet/test_power_strategy.cpp):
//   * conservation: the per-machine caps of live machines sum to at most the
//     global cap — never above, however the arithmetic rounds;
//   * floors: every live machine receives at least StrategyLimits::floor
//     (callers must offer a global cap >= floor * live_machines; Fleet
//     validates this before asking);
//   * ceilings: no machine receives more than StrategyLimits::ceiling —
//     watts beyond a node's physical draw are wasted budget;
//   * dead machines receive exactly 0 W;
//   * purity: the division is a function of its arguments alone, so any
//     caller (any thread count, any call ordering) gets identical caps.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/common/units.hpp"
#include "corun/sim/machine.hpp"

namespace corun::fleet {

/// What the allocator knows about one machine at division time.
struct MachineDemand {
  bool alive = true;           ///< dropped machines get 0 W
  double demand_seconds = 0.0; ///< predicted assigned work at max frequency
  std::size_t jobs = 0;        ///< jobs behind that estimate
};

/// Per-machine bounds every strategy honours.
struct StrategyLimits {
  Watts floor = 8.0;     ///< minimum cap a live machine receives
  Watts ceiling = 35.0;  ///< budget beyond a node's max draw is wasted
  Watts quantum = 0.25;  ///< marginal-utility allocation granularity
};

/// Normalized machine speed as a function of the power cap: the fraction of
/// the machine's uncapped throughput the DVFS ladders can sustain under a
/// cap. Built from the machine's own power model as the Pareto frontier of
/// (worst-case package power, mean frequency fraction) over all level pairs;
/// piecewise-linear and non-decreasing in between. The marginal-utility
/// strategy uses it to turn watts into estimated completion times.
class SpeedCurve {
 public:
  /// Linear fallback: speed proportional to cap (clamped to [0.05, 1]).
  SpeedCurve();

  [[nodiscard]] static SpeedCurve from_machine(const sim::MachineConfig& config);

  /// Speed fraction in (0, 1]; below the first knot the curve holds its
  /// lowest value (a machine never stops entirely while powered).
  [[nodiscard]] double speed_at(Watts cap) const noexcept;

 private:
  struct Knot {
    Watts power = 0.0;
    double speed = 0.0;
  };
  std::vector<Knot> knots_;  ///< strictly increasing in power and speed
};

/// Abstract budget divider. See the file comment for the contract.
class PowerStrategy {
 public:
  virtual ~PowerStrategy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Divides `global_cap` into one cap per machine (same order as
  /// `demands`). The curve describes how caps translate into machine speed
  /// (only the marginal-utility strategy consults it today, but it is part
  /// of the interface so future strategies need no signature change).
  [[nodiscard]] virtual std::vector<Watts> divide(
      Watts global_cap, const std::vector<MachineDemand>& demands,
      const StrategyLimits& limits, const SpeedCurve& curve) const = 0;
};

/// Every machine gets the same share: min(ceiling, global / live). The
/// naive equal-split baseline the benches compare against.
class UniformStrategy final : public PowerStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "uniform"; }
  [[nodiscard]] std::vector<Watts> divide(
      Watts global_cap, const std::vector<MachineDemand>& demands,
      const StrategyLimits& limits, const SpeedCurve& curve) const override;
};

/// Floor for everyone, then the remaining budget proportional to each
/// machine's predicted demand, water-filling past machines that hit the
/// ceiling. Demand-aware but speed-curve-blind.
class DemandProportionalStrategy final : public PowerStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "demand"; }
  [[nodiscard]] std::vector<Watts> divide(
      Watts global_cap, const std::vector<MachineDemand>& demands,
      const StrategyLimits& limits, const SpeedCurve& curve) const override;
};

/// Greedy quantum allocation against the fleet makespan objective: every
/// quantum of budget goes to the machine with the longest estimated
/// completion time demand / speed(cap) — the machine where a watt has the
/// highest marginal utility to the fleet's bottleneck. Ties break on the
/// lower machine index.
class MarginalUtilityStrategy final : public PowerStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "marginal"; }
  [[nodiscard]] std::vector<Watts> divide(
      Watts global_cap, const std::vector<MachineDemand>& demands,
      const StrategyLimits& limits, const SpeedCurve& curve) const override;
};

/// Strategy names accepted by make_power_strategy, in presentation order.
[[nodiscard]] std::vector<std::string> power_strategy_names();

/// Constructs a strategy by name ("uniform", "demand", "marginal").
/// Returns an error for unknown names.
[[nodiscard]] Expected<std::unique_ptr<PowerStrategy>> make_power_strategy(
    const std::string& name);

}  // namespace corun::fleet
