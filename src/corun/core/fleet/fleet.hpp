// Fleet: a datacenter-level power budget over N simulated APUs.
//
// The paper schedules one integrated CPU-GPU node under one cap. This layer
// composes N of those nodes — each a full `sim::Engine`-backed machine with
// its own `DynamicRuntime`, planner, and governor — under a single global
// power budget, the shape a facility power manager has to solve: one breaker
// number divided across hundreds of nodes, re-divided whenever the world
// moves (a node drops out, the facility cap changes, a wave of jobs lands).
//
// Execution model (two deterministic passes):
//   1. *Translate.* One chronological walk over the FleetPlan turns each
//      fleet-level event into per-machine FaultPlan events: a dropout
//      becomes kCancel events draining that machine's jobs, a global cap
//      change or arrival wave becomes per-machine kCapSet / kArrival
//      events. After every fleet event the configured PowerStrategy
//      re-divides the budget over the live machines' demand estimates and
//      the new caps are appended as kCapSet events — each machine then
//      replans through the ordinary DynamicRuntime cap-change path (plan
//      repair, plan cache, degradation ladder), completely unchanged.
//   2. *Execute.* All N machines run independently — per-machine seed
//      task_seed(options.seed, m) — fanned out on the shared TaskPool with
//      ordered-merge discipline, so the FleetReport is byte-identical at
//      any --jobs count. Machine m's runtime never observes machine k.
//
// Demand model: a machine's demand is the sum of its assigned jobs'
// predicted best solo times at max frequency (min over devices of the
// descriptor base time, input-scaled) — an *assigned-work* estimate, not a
// remaining-work one: it is computable in the translate pass before any
// machine has run, which is what keeps the translation independent of
// execution and the whole fleet embarrassingly parallel. Dropouts zero a
// machine's demand; waves add to it.
//
// Global-cap accounting: every machine samples power on the same 1 s-aligned
// grid from t=0, so fleet power at sample k is the sum of true_power over
// machines still running at that instant (finished machines draw nothing).
// A sample violates the global cap when that sum exceeds the cap in force
// at its timestamp; violations inside `transition_window` seconds after a
// fleet event are transient (governors re-converging) and reported
// separately from steady-state ones, which the bench requires to be zero.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/common/units.hpp"
#include "corun/core/fleet/power_strategy.hpp"
#include "corun/core/runtime/dynamic.hpp"
#include "corun/core/runtime/experiment.hpp"
#include "corun/core/sched/plan_cache/plan_cache.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/machine.hpp"

namespace corun::fleet {

// ---- fleet event streams --------------------------------------------------

enum class FleetEventKind {
  kDropout,    ///< one machine dies; its queued and running jobs are lost
  kGlobalCap,  ///< the facility budget moves (or disappears)
  kWave,       ///< a wave of jobs arrives, spread over the live machines
};

[[nodiscard]] const char* fleet_event_kind_name(FleetEventKind k) noexcept;
[[nodiscard]] Expected<FleetEventKind> parse_fleet_event_kind(
    const std::string& text);

/// One fleet-level perturbation. Only the fields relevant to `kind` are
/// meaningful (the rest serialize as "-").
struct FleetEvent {
  Seconds time = 0.0;
  FleetEventKind kind = FleetEventKind::kGlobalCap;

  /// kDropout: which machine dies; -1 picks deterministically from the
  /// live machines using `seed`.
  int machine = -1;

  /// kGlobalCap: the new facility budget; nullopt removes the cap (every
  /// live machine is then allocated its ceiling).
  std::optional<Watts> cap;

  /// kWave: how many jobs arrive; they round-robin over the live machines
  /// from a seeded starting offset, programs and input scales drawn from
  /// the fleet's program pool with `seed`.
  std::size_t jobs = 0;

  std::uint64_t seed = 0;
};

/// A time-sorted fleet event stream with the same plain-data discipline as
/// sim::FaultPlan: construct directly, parse from CSV, or generate from a
/// seeded `random:` spec.
struct FleetPlan {
  std::vector<FleetEvent> events;

  /// Stable-sorts events by time (equal times keep insertion order).
  void sort();

  /// Error when an event is malformed (negative time, non-positive cap,
  /// wave without jobs, dropout machine index < -1) or the stream is not
  /// time-sorted; true otherwise.
  [[nodiscard]] Expected<bool> validate() const;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
};

/// CSV round trip. Schema (one row per event, "-" for unused fields):
///   time,kind,machine,cap,jobs,seed
/// `kind` is dropout|cap|wave; a `cap` of "-" on a cap row removes the cap.
void fleet_plan_to_csv(const FleetPlan& plan, std::ostream& out);
[[nodiscard]] Expected<FleetPlan> fleet_plan_from_csv(const std::string& text);

/// Parses the `--events` generator spec form:
///   random:dropouts=1,caps=1,waves=1,horizon=60,wave_jobs=4,
///          cap_low=10,cap_high=14,seed=7
/// `machines` scales the drawn global caps: cap events draw uniformly in
/// [cap_low, cap_high] watts *per machine* and multiply by the fleet size,
/// so one spec works at 64 and at 1024 machines. Unknown keys are an
/// error; omitted keys keep defaults. Text not starting with "random:" is
/// rejected (the tool treats it as a CSV path instead).
[[nodiscard]] Expected<FleetPlan> generate_fleet_plan_from_spec(
    const std::string& spec, std::size_t machines);

// ---- fleet configuration --------------------------------------------------

/// Default program pool fleet workloads draw from (catalogue names).
[[nodiscard]] const std::vector<std::string>& default_fleet_programs();

/// The reference batch whose profiles every fleet machine shares: one
/// instance per pool program, named exactly like the program, at input
/// scale 1.0 — the anchor instances the DynamicRuntime's cross-run scaling
/// rung derives every machine-local instance from (no machine ever falls to
/// online sampling, which keeps N-machine artifact cost O(pool), not O(N)).
[[nodiscard]] Expected<workload::Batch> make_fleet_reference_batch(
    const std::vector<std::string>& programs);

struct FleetOptions {
  std::size_t machines = 64;
  Watts global_cap = 704.0;  ///< facility budget divided over the machines

  /// PowerStrategy name ("uniform", "demand", "marginal").
  std::string strategy = "uniform";
  StrategyLimits limits;

  std::uint64_t seed = 42;

  /// Per-machine base job count, plus a seeded extra in [0, jobs_spread]
  /// so machine demands are heterogeneous (what separates the demand-aware
  /// strategies from uniform).
  std::size_t jobs_per_machine = 3;
  std::size_t jobs_spread = 0;

  /// Program pool (empty = default_fleet_programs()).
  std::vector<std::string> programs;
  double min_input_scale = 0.7;
  double max_input_scale = 1.3;

  /// Per-machine runtime knobs, passed through to DynamicRuntime.
  sim::EngineMode engine_mode = sim::default_engine_mode();
  sim::BackendSpec backend = sim::default_backend_spec();
  std::string scheduler = "hcs+";
  bool plan_repair = true;
  std::shared_ptr<sched::PlanCache> plan_cache;  ///< shared across machines
  Seconds sample_interval = 1.0;

  /// Samples within this many seconds after a fleet event count as
  /// transient, not steady-state, for global-cap violation accounting.
  Seconds transition_window = 2.0;
};

// ---- fleet reports --------------------------------------------------------

/// One machine's slice of the fleet run.
struct MachineOutcome {
  std::size_t index = 0;
  bool dropped = false;
  std::size_t assigned_jobs = 0;  ///< initial + wave arrivals
  Watts initial_cap = 0.0;
  runtime::DynamicReport report;  ///< the full per-machine dynamic report
};

/// The budget division in force from `time` onward.
struct AllocationRecord {
  Seconds time = 0.0;
  std::optional<Watts> global_cap;  ///< nullopt = uncapped
  std::size_t live = 0;
  std::vector<Watts> caps;  ///< one per machine; dead machines hold 0
};

struct FleetReport {
  std::vector<MachineOutcome> machines;   ///< index order, always N entries
  std::vector<AllocationRecord> allocations;  ///< t=0 plus one per event

  Seconds fleet_makespan = 0.0;  ///< max machine makespan
  std::size_t total_jobs = 0;    ///< assigned across the fleet
  std::size_t finished_jobs = 0;
  std::size_t lost_jobs = 0;     ///< drained by dropouts

  std::size_t dropouts = 0;
  std::size_t cap_changes = 0;
  std::size_t waves = 0;
  std::size_t redivisions = 0;   ///< strategy invocations after t=0

  /// Global-cap accounting over the aligned sample grid (see file comment).
  std::size_t power_samples = 0;
  std::size_t over_cap = 0;         ///< any sample with fleet power > cap
  std::size_t steady_over_cap = 0;  ///< excluding post-event transients
  Watts worst_overshoot = 0.0;

  /// Aggregated planner activity across the fleet.
  std::size_t replans = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  /// Deterministic human-readable digest printed at limited precision, so
  /// the event and analytic backends (equal to ~1e-9) render identically —
  /// the property the CI fleet smoke pins byte-for-byte.
  [[nodiscard]] std::string summary() const;
};

// ---- the fleet ------------------------------------------------------------

class Fleet {
 public:
  Fleet(sim::MachineConfig config, FleetOptions options);

  /// Runs the whole fleet through `plan` against shared model artifacts
  /// (build them once with build_artifacts over make_fleet_reference_batch;
  /// every machine reuses them read-only). Errors on invalid options or a
  /// plan whose caps cannot fund the live machines' floors.
  [[nodiscard]] Expected<FleetReport> execute(
      const FleetPlan& plan, const runtime::ModelArtifacts& artifacts) const;

  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }
  [[nodiscard]] const FleetOptions& options() const noexcept {
    return options_;
  }

 private:
  sim::MachineConfig config_;
  FleetOptions options_;
};

}  // namespace corun::fleet
