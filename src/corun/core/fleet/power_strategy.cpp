#include "corun/core/fleet/power_strategy.hpp"

#include <algorithm>
#include <limits>

#include "corun/common/check.hpp"
#include "corun/sim/power_model.hpp"

namespace corun::fleet {

namespace {

std::size_t live_count(const std::vector<MachineDemand>& demands) {
  return static_cast<std::size_t>(
      std::count_if(demands.begin(), demands.end(),
                    [](const MachineDemand& d) { return d.alive; }));
}

/// Shared preconditions: a positive budget that can fund every live
/// machine's floor. Fleet validates these with a friendly error before any
/// strategy runs; a violation here is a programming error.
void check_inputs(Watts global_cap, const std::vector<MachineDemand>& demands,
                  const StrategyLimits& limits) {
  CORUN_CHECK_MSG(limits.floor > 0.0 && limits.ceiling >= limits.floor,
                  "power strategy limits are inverted");
  CORUN_CHECK_MSG(
      global_cap >= limits.floor * static_cast<double>(live_count(demands)),
      "global cap cannot fund every live machine's floor");
}

/// Clamps rounding residue so the caps of live machines can never sum past
/// the global budget: walks machines in index order and trims any excess
/// above the floor. The excess is at most a few ulps of proportional-share
/// arithmetic, but conservation is a contract, not a tolerance.
void enforce_conservation(std::vector<Watts>& caps, Watts global_cap,
                          const StrategyLimits& limits) {
  double total = 0.0;
  for (const Watts c : caps) total += c;
  double excess = total - global_cap;
  for (std::size_t m = 0; m < caps.size() && excess > 0.0; ++m) {
    if (caps[m] <= limits.floor) continue;
    const double cut = std::min(excess, caps[m] - limits.floor);
    caps[m] -= cut;
    excess -= cut;
  }
}

}  // namespace

// ---- SpeedCurve -----------------------------------------------------------

SpeedCurve::SpeedCurve() {
  knots_.push_back({0.0, 0.05});
  knots_.push_back({1.0, 1.0});
}

SpeedCurve SpeedCurve::from_machine(const sim::MachineConfig& config) {
  const sim::PowerModel model(config.power, config.cpu_ladder,
                              config.gpu_ladder);
  // Candidate operating points: worst-case package power vs the mean of the
  // two domains' frequency fractions (the same "both devices matter
  // equally" proxy the schedulers' DVFS enumeration uses).
  struct Point {
    Watts power;
    double speed;
  };
  std::vector<Point> points;
  for (sim::FreqLevel cl = 0; cl <= config.cpu_ladder.max_level(); ++cl) {
    for (sim::FreqLevel gl = 0; gl <= config.gpu_ladder.max_level(); ++gl) {
      points.push_back({model.package_power_full(cl, gl),
                        (config.cpu_ladder.fraction(cl) +
                         config.gpu_ladder.fraction(gl)) /
                            2.0});
    }
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.power != b.power ? a.power < b.power : a.speed < b.speed;
  });
  // Pareto frontier: keep points that strictly improve on speed as power
  // grows; the result is non-decreasing in both coordinates.
  SpeedCurve curve;
  curve.knots_.clear();
  double best = 0.0;
  for (const Point& p : points) {
    if (p.speed <= best) continue;
    best = p.speed;
    curve.knots_.push_back({p.power, p.speed});
  }
  CORUN_CHECK_MSG(!curve.knots_.empty(), "machine has no operating points");
  return curve;
}

double SpeedCurve::speed_at(Watts cap) const noexcept {
  if (cap <= knots_.front().power) return knots_.front().speed;
  if (cap >= knots_.back().power) return knots_.back().speed;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (cap > knots_[i].power) continue;
    const Knot& lo = knots_[i - 1];
    const Knot& hi = knots_[i];
    const double t = (cap - lo.power) / (hi.power - lo.power);
    return lo.speed + t * (hi.speed - lo.speed);
  }
  return knots_.back().speed;
}

// ---- strategies -----------------------------------------------------------

std::vector<Watts> UniformStrategy::divide(
    Watts global_cap, const std::vector<MachineDemand>& demands,
    const StrategyLimits& limits, const SpeedCurve& /*curve*/) const {
  check_inputs(global_cap, demands, limits);
  const std::size_t live = live_count(demands);
  std::vector<Watts> caps(demands.size(), 0.0);
  if (live == 0) return caps;
  const Watts share =
      std::min(limits.ceiling, global_cap / static_cast<double>(live));
  for (std::size_t m = 0; m < demands.size(); ++m) {
    if (demands[m].alive) caps[m] = share;
  }
  enforce_conservation(caps, global_cap, limits);
  return caps;
}

std::vector<Watts> DemandProportionalStrategy::divide(
    Watts global_cap, const std::vector<MachineDemand>& demands,
    const StrategyLimits& limits, const SpeedCurve& /*curve*/) const {
  check_inputs(global_cap, demands, limits);
  std::vector<Watts> caps(demands.size(), 0.0);
  std::vector<bool> open(demands.size(), false);
  double budget = 0.0;  // what remains after the floors
  for (std::size_t m = 0; m < demands.size(); ++m) {
    if (!demands[m].alive) continue;
    caps[m] = limits.floor;
    open[m] = demands[m].demand_seconds > 0.0;
    budget += 0.0;
  }
  budget = global_cap -
           limits.floor * static_cast<double>(live_count(demands));
  // Water-fill: hand each still-open machine its demand-proportional share
  // of the remaining budget; machines that hit the ceiling close and their
  // unused share re-divides among the rest next round.
  for (int round = 0; round < 64 && budget > 1e-12; ++round) {
    double open_demand = 0.0;
    for (std::size_t m = 0; m < demands.size(); ++m) {
      if (open[m]) open_demand += demands[m].demand_seconds;
    }
    if (open_demand <= 0.0) break;
    double spent = 0.0;
    bool closed_any = false;
    for (std::size_t m = 0; m < demands.size(); ++m) {
      if (!open[m]) continue;
      const double share =
          budget * (demands[m].demand_seconds / open_demand);
      const double headroom = limits.ceiling - caps[m];
      const double grant = std::min(share, headroom);
      caps[m] += grant;
      spent += grant;
      if (caps[m] >= limits.ceiling - 1e-12) {
        open[m] = false;
        closed_any = true;
      }
    }
    budget -= spent;
    if (!closed_any) break;  // everyone got their full share
  }
  enforce_conservation(caps, global_cap, limits);
  return caps;
}

std::vector<Watts> MarginalUtilityStrategy::divide(
    Watts global_cap, const std::vector<MachineDemand>& demands,
    const StrategyLimits& limits, const SpeedCurve& curve) const {
  check_inputs(global_cap, demands, limits);
  CORUN_CHECK_MSG(limits.quantum > 0.0, "marginal quantum must be positive");
  std::vector<Watts> caps(demands.size(), 0.0);
  for (std::size_t m = 0; m < demands.size(); ++m) {
    if (demands[m].alive) caps[m] = limits.floor;
  }
  double budget =
      global_cap - limits.floor * static_cast<double>(live_count(demands));
  // Each quantum goes to the current bottleneck: the machine whose
  // estimated completion time demand / speed(cap) is longest and whose cap
  // can still grow. That is exactly where a watt buys the most reduction in
  // the fleet makespan estimate the benches measure.
  auto est_time = [&](std::size_t m) {
    return demands[m].demand_seconds / curve.speed_at(caps[m]);
  };
  while (budget >= limits.quantum) {
    std::size_t bottleneck = demands.size();
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < demands.size(); ++m) {
      if (!demands[m].alive || demands[m].demand_seconds <= 0.0) continue;
      if (caps[m] + limits.quantum > limits.ceiling) continue;
      const double t = est_time(m);
      if (t > worst) {
        worst = t;
        bottleneck = m;
      }
    }
    if (bottleneck == demands.size()) break;  // everyone capped out or idle
    caps[bottleneck] += limits.quantum;
    budget -= limits.quantum;
  }
  enforce_conservation(caps, global_cap, limits);
  return caps;
}

// ---- registry -------------------------------------------------------------

std::vector<std::string> power_strategy_names() {
  return {"uniform", "demand", "marginal"};
}

Expected<std::unique_ptr<PowerStrategy>> make_power_strategy(
    const std::string& name) {
  if (name == "uniform") {
    return std::unique_ptr<PowerStrategy>(std::make_unique<UniformStrategy>());
  }
  if (name == "demand") {
    return std::unique_ptr<PowerStrategy>(
        std::make_unique<DemandProportionalStrategy>());
  }
  if (name == "marginal") {
    return std::unique_ptr<PowerStrategy>(
        std::make_unique<MarginalUtilityStrategy>());
  }
  return fail("unknown power strategy '" + name +
                  "' (expected uniform|demand|marginal)",
              ErrorCategory::kInvalidArgument);
}

}  // namespace corun::fleet
