#include "corun/core/fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "corun/common/csv.hpp"
#include "corun/common/rng.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/workload/rodinia.hpp"

namespace corun::fleet {

namespace {

/// Shortest-exact double rendering (same contract as fault_injector.cpp):
/// plans written to disk replay bit-for-bit.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

constexpr const char* kCsvHeader[] = {"time", "kind", "machine",
                                      "cap",  "jobs", "seed"};

/// Fleet power equality across backends holds to ~1e-9 per machine; the
/// comparison slack absorbs the summed drift so a violation count can never
/// flip between the event and analytic backends.
constexpr Watts kCapSlack = 1e-6;

}  // namespace

// ---- fleet event streams --------------------------------------------------

const char* fleet_event_kind_name(FleetEventKind k) noexcept {
  switch (k) {
    case FleetEventKind::kDropout: return "dropout";
    case FleetEventKind::kGlobalCap: return "cap";
    case FleetEventKind::kWave: return "wave";
  }
  return "?";
}

Expected<FleetEventKind> parse_fleet_event_kind(const std::string& text) {
  if (text == "dropout") return FleetEventKind::kDropout;
  if (text == "cap") return FleetEventKind::kGlobalCap;
  if (text == "wave") return FleetEventKind::kWave;
  return fail("unknown fleet event kind '" + text +
                  "' (expected dropout|cap|wave)",
              ErrorCategory::kParse);
}

void FleetPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     return a.time < b.time;
                   });
}

Expected<bool> FleetPlan::validate() const {
  Seconds prev = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FleetEvent& e = events[i];
    const std::string where = "fleet event " + std::to_string(i) + " (" +
                              fleet_event_kind_name(e.kind) + ")";
    if (e.time < 0.0) {
      return fail(where + ": negative time", ErrorCategory::kInvalidArgument);
    }
    if (e.time < prev) {
      return fail(where + ": stream is not time-sorted (call sort())",
                  ErrorCategory::kInvalidArgument);
    }
    prev = e.time;
    switch (e.kind) {
      case FleetEventKind::kDropout:
        if (e.machine < -1) {
          return fail(where + ": machine index < -1",
                      ErrorCategory::kInvalidArgument);
        }
        break;
      case FleetEventKind::kGlobalCap:
        if (e.cap && *e.cap <= 0.0) {
          return fail(where + ": non-positive cap",
                      ErrorCategory::kInvalidArgument);
        }
        break;
      case FleetEventKind::kWave:
        if (e.jobs == 0) {
          return fail(where + ": wave without jobs",
                      ErrorCategory::kInvalidArgument);
        }
        break;
    }
  }
  return true;
}

void fleet_plan_to_csv(const FleetPlan& plan, std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string>(std::begin(kCsvHeader),
                                            std::end(kCsvHeader)));
  for (const FleetEvent& e : plan.events) {
    writer.write_row({fmt_double(e.time), fleet_event_kind_name(e.kind),
                      std::to_string(e.machine),
                      e.cap ? fmt_double(*e.cap) : "-",
                      std::to_string(e.jobs), std::to_string(e.seed)});
  }
}

Expected<FleetPlan> fleet_plan_from_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  FleetPlan plan;
  bool header = true;
  for (const auto& row : rows.value()) {
    if (header) {
      header = false;
      if (row.empty() || row[0] != "time") {
        return fail("fleet plan CSV must start with: time,kind,...",
                    ErrorCategory::kParse);
      }
      continue;
    }
    if (row.size() != 6) {
      return fail("fleet plan CSV row arity != 6", ErrorCategory::kParse);
    }
    FleetEvent e;
    const auto kind = parse_fleet_event_kind(row[1]);
    if (!kind.has_value()) return kind.error();
    e.kind = kind.value();
    try {
      // "-" in any optional column keeps the field's default, so
      // hand-authored plans only fill the columns their kind uses.
      e.time = std::stod(row[0]);
      if (row[2] != "-") e.machine = static_cast<int>(std::stol(row[2]));
      if (row[3] != "-") e.cap = std::stod(row[3]);
      if (row[4] != "-") {
        e.jobs = static_cast<std::size_t>(std::stoull(row[4]));
      }
      if (row[5] != "-") {
        e.seed = static_cast<std::uint64_t>(std::stoull(row[5]));
      }
    } catch (const std::exception& ex) {
      return fail(std::string("fleet plan CSV parse error: ") + ex.what(),
                  ErrorCategory::kParse);
    }
    plan.events.push_back(std::move(e));
  }
  const auto valid = plan.validate();
  if (!valid.has_value()) return valid.error();
  return plan;
}

Expected<FleetPlan> generate_fleet_plan_from_spec(const std::string& spec,
                                                  std::size_t machines) {
  constexpr std::string_view kPrefix = "random:";
  if (spec.rfind(kPrefix, 0) != 0) {
    return fail("fleet event spec must start with 'random:'",
                ErrorCategory::kInvalidArgument);
  }
  int dropouts = 1;
  int caps = 1;
  int waves = 1;
  Seconds horizon = 60.0;
  std::size_t wave_jobs = 4;
  Watts cap_low = 10.0;  // per machine; multiplied by the fleet size
  Watts cap_high = 14.0;
  std::uint64_t seed = 42;

  std::stringstream ss(spec.substr(kPrefix.size()));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return fail("fleet event spec item '" + item + "' is not key=value",
                  ErrorCategory::kParse);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "dropouts") {
        dropouts = std::stoi(value);
      } else if (key == "caps") {
        caps = std::stoi(value);
      } else if (key == "waves") {
        waves = std::stoi(value);
      } else if (key == "horizon") {
        horizon = std::stod(value);
      } else if (key == "wave_jobs") {
        wave_jobs = static_cast<std::size_t>(std::stoull(value));
      } else if (key == "cap_low") {
        cap_low = std::stod(value);
      } else if (key == "cap_high") {
        cap_high = std::stod(value);
      } else if (key == "seed") {
        seed = static_cast<std::uint64_t>(std::stoull(value));
      } else {
        return fail("unknown fleet event spec key '" + key + "'",
                    ErrorCategory::kInvalidArgument);
      }
    } catch (const std::exception& ex) {
      return fail("fleet event spec value for '" + key +
                      "' failed to parse: " + ex.what(),
                  ErrorCategory::kParse);
    }
  }
  if (dropouts < 0 || caps < 0 || waves < 0) {
    return fail("fleet event spec counts must be non-negative",
                ErrorCategory::kInvalidArgument);
  }
  if (cap_low <= 0.0 || cap_high < cap_low) {
    return fail("fleet event spec needs 0 < cap_low <= cap_high",
                ErrorCategory::kInvalidArgument);
  }

  // Each kind draws from its own forked stream (the fault-injector
  // discipline): adding one more wave never shifts the dropout times of an
  // otherwise-equal plan.
  FleetPlan plan;
  const Rng root(seed);
  const Seconds h = std::max(horizon, 1e-3);
  {
    Rng rng = root.fork("fleet-dropouts");
    for (int i = 0; i < dropouts; ++i) {
      FleetEvent e;
      e.kind = FleetEventKind::kDropout;
      e.time = rng.uniform(0.0, h);
      e.machine = -1;  // resolved among live machines at translate time
      e.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
      plan.events.push_back(std::move(e));
    }
  }
  {
    Rng rng = root.fork("fleet-caps");
    for (int i = 0; i < caps; ++i) {
      FleetEvent e;
      e.kind = FleetEventKind::kGlobalCap;
      e.time = rng.uniform(0.0, h);
      e.cap = rng.uniform(cap_low, cap_high) *
              static_cast<double>(std::max<std::size_t>(machines, 1));
      plan.events.push_back(std::move(e));
    }
  }
  {
    Rng rng = root.fork("fleet-waves");
    for (int i = 0; i < waves; ++i) {
      FleetEvent e;
      e.kind = FleetEventKind::kWave;
      e.time = rng.uniform(0.0, h);
      e.jobs = wave_jobs;
      e.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
      plan.events.push_back(std::move(e));
    }
  }
  plan.sort();
  const auto valid = plan.validate();
  if (!valid.has_value()) return valid.error();
  return plan;
}

// ---- fleet configuration --------------------------------------------------

const std::vector<std::string>& default_fleet_programs() {
  static const std::vector<std::string> kPool{"srad",     "lud", "hotspot",
                                             "backprop", "cfd", "dwt2d"};
  return kPool;
}

Expected<workload::Batch> make_fleet_reference_batch(
    const std::vector<std::string>& programs) {
  workload::Batch batch;
  for (const std::string& name : programs) {
    auto desc = workload::rodinia_by_name(name);
    if (!desc) {
      return fail("unknown fleet program '" + name + "'",
                  ErrorCategory::kNotFound);
    }
    // Anchor instances: named exactly like the program, at scale 1.0, so
    // every machine-local instance resolves through cross-run scaling.
    desc->input_scale = 1.0;
    batch.add(*desc, hash64(name), name);
  }
  return batch;
}

// ---- the fleet ------------------------------------------------------------

Fleet::Fleet(sim::MachineConfig config, FleetOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

namespace {

/// Translate-time state of one machine.
struct MachineState {
  bool alive = true;
  double demand = 0.0;        ///< assigned-work estimate (seconds)
  std::size_t assigned = 0;   ///< initial jobs + wave arrivals
  Watts last_cap = 0.0;
  workload::Batch batch;
  std::vector<sim::FaultEvent> events;
};

/// Predicted best solo seconds of one job: min over devices of the raw
/// device base time, input-scaled — the same max-frequency estimate for
/// initial jobs and wave arrivals.
double solo_estimate(const workload::KernelDescriptor& desc, double scale) {
  return std::min(desc.cpu.base_time, desc.gpu.base_time) * scale;
}

std::vector<std::size_t> live_indices(const std::vector<MachineState>& ms) {
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < ms.size(); ++m) {
    if (ms[m].alive) out.push_back(m);
  }
  return out;
}

}  // namespace

Expected<FleetReport> Fleet::execute(
    const FleetPlan& plan, const runtime::ModelArtifacts& artifacts) const {
  const std::size_t n = options_.machines;
  if (n == 0) {
    return fail("fleet needs at least one machine",
                ErrorCategory::kInvalidArgument);
  }
  if (options_.jobs_per_machine == 0) {
    return fail("fleet machines need at least one initial job",
                ErrorCategory::kInvalidArgument);
  }
  if (options_.limits.floor <= 0.0 ||
      options_.limits.ceiling < options_.limits.floor) {
    return fail("fleet power limits are inverted",
                ErrorCategory::kInvalidArgument);
  }
  if (options_.min_input_scale <= 0.0 ||
      options_.max_input_scale < options_.min_input_scale) {
    return fail("fleet input-scale range is inverted",
                ErrorCategory::kInvalidArgument);
  }
  const auto plan_valid = plan.validate();
  if (!plan_valid.has_value()) return plan_valid.error();
  auto strategy_or = make_power_strategy(options_.strategy);
  if (!strategy_or.has_value()) return strategy_or.error();
  const PowerStrategy& strategy = *strategy_or.value();

  const std::vector<std::string>& pool =
      options_.programs.empty() ? default_fleet_programs() : options_.programs;
  std::vector<workload::KernelDescriptor> pool_descs;
  pool_descs.reserve(pool.size());
  for (const std::string& name : pool) {
    auto desc = workload::rodinia_by_name(name);
    if (!desc) {
      return fail("unknown fleet program '" + name + "'",
                  ErrorCategory::kNotFound);
    }
    pool_descs.push_back(*desc);
  }

  // ---- initial assignment (deterministic in options_.seed alone) ---------
  std::vector<MachineState> ms(n);
  for (std::size_t m = 0; m < n; ++m) {
    Rng rng(common::task_seed(options_.seed, m));
    std::size_t count = options_.jobs_per_machine;
    if (options_.jobs_spread > 0) {
      count += static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(options_.jobs_spread)));
    }
    for (std::size_t j = 0; j < count; ++j) {
      workload::KernelDescriptor desc = pool_descs[(m + j) % pool.size()];
      desc.input_scale =
          rng.uniform(options_.min_input_scale, options_.max_input_scale);
      const auto seed =
          static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
      ms[m].batch.add(desc, seed, desc.name + "@" + std::to_string(j));
      ms[m].demand += solo_estimate(desc, desc.input_scale);
      ++ms[m].assigned;
    }
  }

  const SpeedCurve curve = SpeedCurve::from_machine(config_);
  FleetReport out;
  std::optional<Watts> cur_cap = options_.global_cap;

  // Re-divides the budget at time t: records the allocation and appends a
  // kCapSet to every live machine whose cap actually moved (t=0 caps are
  // installed as the runtimes' initial caps instead).
  auto divide_now = [&](Seconds t) -> Expected<bool> {
    std::vector<MachineDemand> demands(n);
    for (std::size_t m = 0; m < n; ++m) {
      demands[m] = {ms[m].alive, ms[m].demand, ms[m].assigned};
    }
    const std::vector<std::size_t> live = live_indices(ms);
    std::vector<Watts> caps(n, 0.0);
    if (!live.empty()) {
      if (cur_cap) {
        if (*cur_cap <
            options_.limits.floor * static_cast<double>(live.size())) {
          return fail("global cap " + fmt_double(*cur_cap) + " at t=" +
                          fmt_double(t) + " cannot fund " +
                          std::to_string(live.size()) + " machine floors of " +
                          fmt_double(options_.limits.floor) + " W",
                      ErrorCategory::kInvalidArgument);
        }
        caps = strategy.divide(*cur_cap, demands, options_.limits, curve);
      } else {
        for (const std::size_t m : live) caps[m] = options_.limits.ceiling;
      }
    }
    for (const std::size_t m : live) {
      if (std::abs(caps[m] - ms[m].last_cap) <= 1e-9) continue;
      if (t > 0.0) {
        sim::FaultEvent cap_ev;
        cap_ev.time = t;
        cap_ev.kind = sim::FaultKind::kCapSet;
        cap_ev.cap = caps[m];
        ms[m].events.push_back(std::move(cap_ev));
      }
      ms[m].last_cap = caps[m];
    }
    AllocationRecord rec;
    rec.time = t;
    rec.global_cap = cur_cap;
    rec.live = live.size();
    rec.caps = std::move(caps);
    out.allocations.push_back(std::move(rec));
    return true;
  };

  const auto first = divide_now(0.0);
  if (!first.has_value()) return first.error();

  // ---- translate fleet events into per-machine fault events --------------
  for (const FleetEvent& e : plan.events) {
    bool redivide = true;
    switch (e.kind) {
      case FleetEventKind::kDropout: {
        const std::vector<std::size_t> live = live_indices(ms);
        if (live.empty()) {
          redivide = false;
          break;  // nothing left to drop
        }
        std::size_t victim;
        if (e.machine < 0) {
          Rng rng(e.seed);
          victim = live[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(live.size()) - 1))];
        } else {
          victim = static_cast<std::size_t>(e.machine);
          if (victim >= n || !ms[victim].alive) {
            return fail("dropout target " + std::to_string(e.machine) +
                            " is out of range or already dead",
                        ErrorCategory::kInvalidArgument);
          }
        }
        // Drain the machine: one seeded kCancel per job it was ever
        // assigned. Cancels that find every job already finished resolve to
        // "no eligible job" in the machine's log, harmlessly.
        for (std::size_t k = 0; k < ms[victim].assigned; ++k) {
          sim::FaultEvent cancel;
          cancel.time = e.time;
          cancel.kind = sim::FaultKind::kCancel;
          cancel.target = -1;
          cancel.seed = common::task_seed(e.seed, k);
          ms[victim].events.push_back(std::move(cancel));
        }
        ms[victim].alive = false;
        ms[victim].demand = 0.0;
        ++out.dropouts;
        break;
      }
      case FleetEventKind::kGlobalCap: {
        cur_cap = e.cap;
        ++out.cap_changes;
        break;
      }
      case FleetEventKind::kWave: {
        const std::vector<std::size_t> live = live_indices(ms);
        if (live.empty()) {
          redivide = false;
          break;  // a wave into a dead fleet is dropped on the floor
        }
        Rng rng(e.seed);
        const auto start = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        for (std::size_t j = 0; j < e.jobs; ++j) {
          const std::size_t m = live[(start + j) % live.size()];
          const auto pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool_descs.size()) - 1));
          const double scale = rng.uniform(options_.min_input_scale,
                                           options_.max_input_scale);
          sim::FaultEvent arrival;
          arrival.time = e.time;
          arrival.kind = sim::FaultKind::kArrival;
          arrival.program = pool_descs[pick].name;
          arrival.input_scale = scale;
          arrival.seed =
              static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
          ms[m].events.push_back(std::move(arrival));
          ms[m].demand += solo_estimate(pool_descs[pick], scale);
          ++ms[m].assigned;
        }
        ++out.waves;
        break;
      }
    }
    if (!redivide) continue;
    const auto ok = divide_now(e.time);
    if (!ok.has_value()) return ok.error();
    ++out.redivisions;
  }

  // ---- execute: N independent machines on the shared TaskPool ------------
  const std::vector<Watts>& initial_caps = out.allocations.front().caps;
  common::TaskPool& pool_exec = common::TaskPool::shared();
  std::vector<runtime::DynamicReport> reports =
      pool_exec.parallel_map<runtime::DynamicReport>(n, [&](std::size_t m) {
        runtime::DynamicOptions d;
        d.cap = initial_caps[m];
        d.seed = common::task_seed(options_.seed, m);
        d.engine_mode = options_.engine_mode;
        d.backend = options_.backend;
        d.sample_interval = options_.sample_interval;
        d.record_power_trace = true;
        d.scheduler = options_.scheduler;
        d.plan_cache = options_.plan_cache;
        d.plan_repair = options_.plan_repair;
        const runtime::DynamicRuntime rt(config_, d);
        sim::FaultPlan fp;
        fp.events = ms[m].events;
        fp.sort();
        return rt.execute(ms[m].batch, artifacts.db, artifacts.grid, fp);
      });

  // ---- deterministic merge (index order) ---------------------------------
  out.machines.reserve(n);
  for (std::size_t m = 0; m < n; ++m) {
    MachineOutcome mo;
    mo.index = m;
    mo.dropped = !ms[m].alive;
    mo.assigned_jobs = ms[m].assigned;
    mo.initial_cap = initial_caps[m];
    mo.report = std::move(reports[m]);

    out.fleet_makespan = std::max(out.fleet_makespan, mo.report.report.makespan);
    out.total_jobs += mo.assigned_jobs;
    out.finished_jobs += mo.report.report.jobs.size();
    out.lost_jobs += mo.report.cancelled.size();
    out.replans += mo.report.replans;
    out.plan_cache_hits += mo.report.plan_cache_hits;
    out.plan_cache_misses += mo.report.plan_cache_misses;
    out.machines.push_back(std::move(mo));
  }

  // ---- global-cap accounting over the aligned sample grid ----------------
  std::vector<Watts> sums;
  for (const MachineOutcome& mo : out.machines) {
    for (const sim::PowerSample& s : mo.report.report.power_trace) {
      const auto k = static_cast<std::size_t>(
          std::lround(s.t / options_.sample_interval));
      if (k >= sums.size()) sums.resize(k + 1, 0.0);
      sums[k] += s.true_power;
    }
  }
  // The cap in force at a timestamp: the latest of the initial cap and the
  // kGlobalCap events at or before it.
  std::vector<std::pair<Seconds, std::optional<Watts>>> cap_timeline;
  cap_timeline.emplace_back(0.0, options_.global_cap);
  for (const FleetEvent& e : plan.events) {
    if (e.kind == FleetEventKind::kGlobalCap) {
      cap_timeline.emplace_back(e.time, e.cap);
    }
  }
  for (std::size_t k = 0; k < sums.size(); ++k) {
    const Seconds t = static_cast<double>(k) * options_.sample_interval;
    std::optional<Watts> cap = cap_timeline.front().second;
    for (const auto& [time, c] : cap_timeline) {
      if (time <= t + 1e-9) cap = c;
    }
    ++out.power_samples;
    if (!cap || sums[k] <= *cap + kCapSlack) continue;
    ++out.over_cap;
    out.worst_overshoot = std::max(out.worst_overshoot, sums[k] - *cap);
    bool transient = false;
    for (const FleetEvent& e : plan.events) {
      if (t >= e.time - 1e-9 &&
          t < e.time + options_.transition_window - 1e-9) {
        transient = true;
        break;
      }
    }
    if (!transient) ++out.steady_over_cap;
  }

  return out;
}

std::string FleetReport::summary() const {
  // Limited precision on every float keeps the event and analytic backends
  // (equal to ~1e-9) rendering byte-identically — the CI smoke contract.
  std::ostringstream oss;
  oss.precision(4);
  const std::size_t live = allocations.empty()
                               ? machines.size()
                               : allocations.back().live;
  oss << "fleet: machines=" << machines.size() << " live=" << live << "\n";
  oss << "budget: global_cap=";
  if (allocations.empty() || !allocations.front().global_cap) {
    oss << "-";
  } else {
    oss << *allocations.front().global_cap;
  }
  oss << " redivisions=" << redivisions << "\n";
  oss << "events: dropouts=" << dropouts << " cap_changes=" << cap_changes
      << " waves=" << waves << "\n";
  oss << "jobs: total=" << total_jobs << " finished=" << finished_jobs
      << " lost=" << lost_jobs << "\n";
  oss << "makespan: " << fleet_makespan << "\n";
  oss << "power: samples=" << power_samples << " over_cap=" << over_cap
      << " steady_over_cap=" << steady_over_cap
      << " worst_overshoot=" << worst_overshoot << "\n";
  // Plan-cache counters are deliberately absent: like DynamicReport, the
  // summary stays byte-identical with the cache on or off (the tool reports
  // cache activity on stderr instead).
  oss << "plans: replans=" << replans << "\n";
  return oss.str();
}

}  // namespace corun::fleet
