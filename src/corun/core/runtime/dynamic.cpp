#include "corun/core/runtime/dynamic.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/common/rng.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/sched/branch_and_bound.hpp"
#include "corun/core/sched/plan_cache/caching_scheduler.hpp"
#include "corun/core/sched/registry.hpp"
#include "corun/profile/online_profiler.hpp"
#include "corun/workload/rodinia.hpp"

namespace corun::runtime {

namespace {

/// Fault times are arbitrary reals but the engine advances in dt ticks; an
/// entry is "due" once the clock has reached it up to this slack.
constexpr Seconds kEps = 1e-9;

/// One job the dynamic runtime knows about — initial batch members and
/// arrivals alike.
struct JobRec {
  enum class State { kPending, kRunning, kDone, kCancelled };

  workload::KernelDescriptor desc;
  sim::JobSpec spec;
  std::string name;
  std::uint64_t seed = 0;
  State state = State::kPending;
  sim::DeviceKind device = sim::DeviceKind::kCpu;
  sim::JobId engine_id = -1;
};

/// The fault plan flattened for execution: dropouts become a begin/end pair.
struct TimelineEntry {
  Seconds time = 0.0;
  sim::FaultEvent event;
  bool dropout_end = false;
};

struct QueuedJob {
  std::size_t rec = 0;  ///< index into the global JobRec list
  sim::FreqLevel level = 0;
};

struct DeviceQueue {
  std::deque<QueuedJob> pending;
  std::optional<std::size_t> current;  ///< rec index of the running job
  sim::FreqLevel current_level = 0;
};

/// Single-use executor: all mutable state of one DynamicRuntime::execute
/// call. Strictly single-threaded — determinism across --jobs counts is by
/// construction, not by synchronization.
class Executor {
 public:
  Executor(const sim::MachineConfig& config, const DynamicOptions& options,
           const workload::Batch& batch, const profile::ProfileDB& db,
           const model::DegradationGrid& grid, const sim::FaultPlan& plan)
      : config_(config),
        options_(options),
        db_(db),
        grid_(grid),
        machine_(make_machine(plan)),
        engine_(*machine_) {
    for (const workload::BatchJob& j : batch.jobs()) {
      recs_.push_back(JobRec{.desc = j.descriptor,
                             .spec = j.spec,
                             .name = j.instance_name,
                             .seed = j.seed});
    }
    for (const sim::FaultEvent& e : plan.events) {
      timeline_.push_back({e.time, e, false});
      if (e.kind == sim::FaultKind::kMeterDropout) {
        timeline_.push_back({e.time + e.duration, e, true});
      }
    }
    std::stable_sort(timeline_.begin(), timeline_.end(),
                     [](const TimelineEntry& a, const TimelineEntry& b) {
                       return a.time < b.time;
                     });
    if (options_.plan_cache) {
      cache_stats_at_start_ = options_.plan_cache->stats();
    }
    rebuild_predictor();
  }

  DynamicReport run() {
    // Every job the planner will ever reason about needs a profile — even
    // with rescheduling off, model_dvfs ceiling derivation queries the
    // predictor for running names.
    for (std::size_t i = 0; i < recs_.size(); ++i) ensure_profile(i);
    replan(/*count_as_replan=*/false);

    std::size_t ti = 0;
    while (true) {
      while (ti < timeline_.size() &&
             timeline_[ti].time <= engine_.now() + kEps) {
        apply(timeline_[ti]);
        ++ti;
      }
      feed_idle_devices();
      const bool work = !engine_.idle() || queued_count() > 0;
      if (!work) {
        // Only arrivals can create new work; if none remain, the rest of
        // the timeline is moot.
        const bool arrivals_ahead = std::any_of(
            timeline_.begin() + static_cast<std::ptrdiff_t>(ti),
            timeline_.end(), [](const TimelineEntry& t) {
              return t.event.kind == sim::FaultKind::kArrival;
            });
        if (!arrivals_ahead) {
          for (; ti < timeline_.size(); ++ti) {
            log_skip(timeline_[ti], "batch already complete");
          }
          break;
        }
        // Idle-tick the machine to the next entry (cap moves etc. still
        // apply in order so the arrival runs under the right regime).
        if (timeline_[ti].time > engine_.now() + kEps) {
          engine_.run_for(timeline_[ti].time - engine_.now());
        }
        continue;
      }
      apply_ceilings();
      std::vector<sim::JobEvent> events;
      if (ti < timeline_.size()) {
        const Seconds limit = timeline_[ti].time - engine_.now();
        if (limit <= kEps) continue;  // due now; apply at the loop top
        events = engine_.run_for_until_event(limit);
      } else {
        events = engine_.run_until_event();
      }
      for (const sim::JobEvent& ev : events) {
        const auto it = id_to_rec_.find(ev.id);
        CORUN_CHECK_MSG(it != id_to_rec_.end(), "completion for unknown job");
        recs_[it->second].state = JobRec::State::kDone;
        if (cursor(ev.device).current == it->second) {
          cursor(ev.device).current.reset();
        }
      }
    }
    return collect();
  }

 private:
  // ---- setup -------------------------------------------------------------

  sim::EngineOptions engine_options(const sim::FaultPlan& plan) const {
    // A governor policy only matters when a cap can be in force at some
    // point; otherwise keep kNone so uncapped dynamic runs boot at the
    // ceilings exactly like CoRunRuntime's.
    const bool cap_possible =
        options_.cap.has_value() ||
        std::any_of(plan.events.begin(), plan.events.end(),
                    [](const sim::FaultEvent& e) {
                      return e.kind == sim::FaultKind::kCapSet;
                    });
    sim::EngineOptions eo;
    eo.mode = options_.engine_mode;
    eo.seed = options_.seed;
    eo.power_cap = options_.cap;
    eo.policy = cap_possible ? options_.policy : sim::GovernorPolicy::kNone;
    eo.sample_interval = options_.sample_interval;
    eo.record_samples = options_.record_power_trace;
    eo.cap_window = options_.cap_window;
    eo.thermal = options_.thermal;
    return eo;
  }

  /// Machine construction through the backend factory; a requested
  /// demand-trace recording substitutes the recorder decorator (same
  /// engine-mode coherence rules as make_machine_model).
  [[nodiscard]] std::unique_ptr<sim::MachineModel> make_machine(
      const sim::FaultPlan& plan) {
    if (!options_.record_trace_path.empty()) {
      sim::EngineOptions eo = engine_options(plan);
      if (options_.backend.kind == sim::BackendKind::kAnalytic) {
        eo.mode = sim::EngineMode::kAnalytic;
      } else if (eo.mode == sim::EngineMode::kAnalytic) {
        eo.mode = sim::EngineMode::kEvent;
      }
      auto rec = std::make_unique<sim::RecordingMachine>(config_, eo);
      recorder_ = rec.get();
      return rec;
    }
    return sim::make_machine_model(config_, engine_options(plan),
                                   options_.backend);
  }

  void rebuild_predictor() {
    predictor_ =
        std::make_unique<model::CoRunPredictor>(db_, grid_, config_);
  }

  // ---- profile acquisition ladder (rungs 1-3) ----------------------------

  void ensure_profile(std::size_t rec_idx) {
    JobRec& rec = recs_[rec_idx];
    const auto have = db_.jobs();
    if (std::find(have.begin(), have.end(), rec.name) != have.end()) return;

    // Rung 2: cross-run scaling from an already-profiled instance of the
    // same program.
    for (const JobRec& other : recs_) {
      if (&other == &rec || other.desc.name != rec.desc.name) continue;
      if (std::find(have.begin(), have.end(), other.name) == have.end()) {
        continue;
      }
      db_.add_scaled_instance(other.name, rec.name,
                              rec.desc.input_scale / other.desc.input_scale);
      ++report_.cross_run_estimates;
      rebuild_predictor();
      return;
    }
    if (std::find(have.begin(), have.end(), rec.desc.name) != have.end() &&
        rec.desc.name != rec.name) {
      db_.add_scaled_instance(rec.desc.name, rec.name, rec.desc.input_scale);
      ++report_.cross_run_estimates;
      rebuild_predictor();
      return;
    }

    // Rung 3: online sampling at sparse levels; the simulated seconds the
    // samples would occupy the machine are billed as overhead.
    profile::OnlineProfilerOptions po;
    po.sample_seconds = options_.online_sample_seconds;
    po.seed = options_.seed;
    po.engine_mode = options_.engine_mode;
    // The sampler measures hypothetical standalone runs; a demand trace
    // only covers the main machine's recorded launches, so under the
    // replay backend the sampling windows run on the event tier — the
    // same tier a recording run's sampler used, keeping replay
    // byte-identical to the recording.
    po.backend = options_.backend.kind == sim::BackendKind::kReplay
                     ? sim::BackendSpec{}
                     : options_.backend;
    const profile::OnlineProfiler profiler(config_, po);
    workload::Batch one;
    one.add(rec.desc, rec.seed, rec.name);
    const profile::ProfileDB sampled = profiler.profile_batch(one);
    for (const sim::DeviceKind d :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      for (const sim::FreqLevel level : sampled.levels(rec.name, d)) {
        db_.insert(rec.name, d, level, sampled.at(rec.name, d, level));
      }
    }
    report_.sampling_overhead += profiler.sampling_cost(one);
    ++report_.online_sampled;
    rebuild_predictor();
  }

  // ---- planning (rungs 4-5 live here) ------------------------------------

  std::vector<std::size_t> unstarted() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      if (recs_[i].state == JobRec::State::kPending) out.push_back(i);
    }
    return out;
  }

  void install(const sched::Schedule& plan,
               const std::vector<std::size_t>& subset) {
    cpu_.pending.clear();
    gpu_.pending.clear();
    shared_.clear();
    shared_queue_ = plan.shared_queue;
    // Dynamic mode reinterprets two static semantics: the Default
    // baseline's batch launch becomes sequential feeding (arrivals make a
    // one-shot launch meaningless) and solo-tail jobs join their device's
    // queue (exclusivity is best-effort once jobs arrive mid-run).
    for (const sched::ScheduledJob& sj : plan.cpu) {
      cpu_.pending.push_back({subset[sj.job], sj.level});
    }
    for (const sched::ScheduledJob& sj : plan.gpu) {
      gpu_.pending.push_back({subset[sj.job], sj.level});
    }
    for (const sched::ScheduledJob& sj : plan.shared) {
      shared_.push_back({subset[sj.job], sj.level});
    }
    for (const sched::SoloJob& s : plan.solo) {
      (s.device == sim::DeviceKind::kCpu ? cpu_ : gpu_)
          .pending.push_back({subset[s.job], s.level});
    }
    model_dvfs_ = plan.model_dvfs;
  }

  void naive_install(const std::vector<std::size_t>& subset) {
    cpu_.pending.clear();
    gpu_.pending.clear();
    shared_.clear();
    shared_queue_ = false;
    model_dvfs_ = false;
    for (const std::size_t rec : subset) naive_place(rec);
    report_.last_rung = PlannerRung::kNaive;
    ++report_.fallback_plans;
  }

  /// Appends one job to the less-loaded device queue at the max level (GPU
  /// wins ties — the higher-throughput device, as in the shared-queue rule).
  void naive_place(std::size_t rec) {
    const std::size_t cpu_load =
        cpu_.pending.size() + (device_busy(sim::DeviceKind::kCpu) ? 1 : 0);
    const std::size_t gpu_load =
        gpu_.pending.size() + (device_busy(sim::DeviceKind::kGpu) ? 1 : 0);
    const sim::DeviceKind d = cpu_load < gpu_load ? sim::DeviceKind::kCpu
                                                  : sim::DeviceKind::kGpu;
    cursor(d).pending.push_back({rec, config_.ladder(d).max_level()});
  }

  /// Locally repairs the plan being executed for the new pending set:
  /// survivors keep the device the previous plan gave them (their spots in
  /// the device queues), jobs the previous plan does not cover (arrivals,
  /// jobs from a shared queue) join whichever device runs them fastest solo
  /// under the current cap, GPU winning ties. The result is a valid
  /// schedule for exactly the new sub-batch — a warm-start donor the search
  /// re-encodes into leaf space, never a returned plan — so repairing can
  /// only accelerate the search, not change its answer. Returns nullopt
  /// when a job has no cap-feasible device (the search itself will reject
  /// the sub-batch and the fallback ladder takes over).
  std::optional<sched::Schedule> repair_donor(
      const std::vector<std::size_t>& subset) const {
    std::map<std::size_t, sim::DeviceKind> prev_device;
    for (const QueuedJob& q : cpu_.pending) {
      prev_device[q.rec] = sim::DeviceKind::kCpu;
    }
    for (const QueuedJob& q : gpu_.pending) {
      prev_device[q.rec] = sim::DeviceKind::kGpu;
    }
    if (prev_device.empty()) return std::nullopt;  // nothing to repair from

    const model::CoRunPredictor& m = *predictor_;
    sched::Schedule donor;
    donor.model_dvfs = true;
    for (std::size_t j = 0; j < subset.size(); ++j) {
      const std::string& name = recs_[subset[j]].name;
      const auto cpu_level =
          m.best_solo_level(name, sim::DeviceKind::kCpu, current_cap_);
      const auto gpu_level =
          m.best_solo_level(name, sim::DeviceKind::kGpu, current_cap_);
      std::optional<sim::DeviceKind> device;
      if (const auto it = prev_device.find(subset[j]);
          it != prev_device.end()) {
        // Keep the survivor's device — unless the cap moved it out of
        // reach, in which case the job is re-placed like an arrival.
        const bool still_feasible =
            it->second == sim::DeviceKind::kCpu ? cpu_level.has_value()
                                                : gpu_level.has_value();
        if (still_feasible) device = it->second;
      }
      if (!device) {
        if (cpu_level && gpu_level) {
          const Seconds tc =
              m.standalone_time(name, sim::DeviceKind::kCpu, *cpu_level);
          const Seconds tg =
              m.standalone_time(name, sim::DeviceKind::kGpu, *gpu_level);
          device = tc < tg ? sim::DeviceKind::kCpu : sim::DeviceKind::kGpu;
        } else if (cpu_level) {
          device = sim::DeviceKind::kCpu;
        } else if (gpu_level) {
          device = sim::DeviceKind::kGpu;
        } else {
          return std::nullopt;  // infeasible job; let the planner decide
        }
      }
      if (*device == sim::DeviceKind::kCpu) {
        donor.cpu.push_back({j, *cpu_level});
      } else {
        donor.gpu.push_back({j, *gpu_level});
      }
    }
    return donor;
  }

  void replan(bool count_as_replan) {
    const std::vector<std::size_t> subset = unstarted();
    if (subset.empty()) return;
    CORUN_TRACE_SPAN("dynamic", "dynamic.replan");

    workload::Batch sub;
    for (const std::size_t i : subset) {
      sub.add(recs_[i].desc, recs_[i].seed, recs_[i].name);
    }
    sched::SchedulerContext ctx;
    ctx.batch = &sub;
    ctx.predictor = predictor_.get();
    ctx.cap = current_cap_;
    ctx.policy = options_.policy;

    // Incremental repair, for B&B re-plans only: the initial plan has no
    // predecessor, and other planners ignore the hint. Built before the
    // queues are cleared by install().
    if (count_as_replan && options_.plan_repair &&
        options_.scheduler == "bnb") {
      if (auto donor = repair_donor(subset)) {
        ctx.incumbent_hint = std::move(donor);
        ctx.hint_kind = sched::SchedulerContext::HintKind::kRepair;
      }
    }
    if (count_as_replan) ++report_.replans;

    // The per-replan seed keeps stochastic planners (random) deterministic
    // yet different across replans of one run.
    const std::uint64_t seed = options_.seed + 7919 * (report_.replans + 1);
    auto try_plan = [&](const std::string& name) -> bool {
      const auto scheduler =
          sched::make_cached_scheduler(name, seed, options_.plan_cache);
      if (!scheduler) return false;
      try {
        const sched::Schedule plan = scheduler->plan(ctx);
        plan.validate(sub.size());
        install(plan, subset);
        // Per-plan search telemetry: budget truncation (the run's
        // determinism guarantees are off the table when set) and repair
        // activity. An exact cache hit skips the search entirely, leaving
        // the inner planner's accessors describing a *previous* request —
        // so they are only read when the search actually ran.
        const sched::Scheduler* algo = scheduler.get();
        bool searched = true;
        if (const auto* caching =
                dynamic_cast<const sched::CachingScheduler*>(algo)) {
          searched = !caching->last_exact_hit();
          algo = caching->inner();
        }
        if (const auto* bnb =
                dynamic_cast<const sched::BranchAndBoundScheduler*>(algo);
            bnb != nullptr && searched) {
          if (bnb->exhausted_budget()) ++report_.bnb_budget_exhausted;
          if (bnb->repair_hint_used()) ++report_.plan_repairs;
          if (bnb->repair_fallback()) ++report_.repair_fallbacks;
        }
        return true;
      } catch (const ContractViolation&) {
        return false;
      }
    };
    if (try_plan(options_.scheduler)) {
      report_.last_rung = PlannerRung::kConfigured;
      return;
    }
    // Rung 4: the workhorse baseline; rung 5: naive placement.
    if (options_.scheduler != "default" && try_plan("default")) {
      report_.last_rung = PlannerRung::kDefaultFallback;
      ++report_.fallback_plans;
      return;
    }
    naive_install(subset);
  }

  // ---- execution ---------------------------------------------------------

  DeviceQueue& cursor(sim::DeviceKind d) {
    return d == sim::DeviceKind::kCpu ? cpu_ : gpu_;
  }
  bool device_busy(sim::DeviceKind d) { return !engine_.device_idle(d); }

  std::size_t queued_count() const {
    return cpu_.pending.size() + gpu_.pending.size() + shared_.size();
  }

  void launch(sim::DeviceKind d, const QueuedJob& q) {
    JobRec& rec = recs_[q.rec];
    const sim::JobId id = engine_.launch(rec.spec, d);
    rec.state = JobRec::State::kRunning;
    rec.device = d;
    rec.engine_id = id;
    id_to_rec_[id] = q.rec;
    cursor(d).current = q.rec;
    cursor(d).current_level = config_.ladder(d).clamp(q.level);
  }

  void feed(sim::DeviceKind d) {
    DeviceQueue& cur = cursor(d);
    cur.current.reset();
    if (shared_queue_) {
      if (!shared_.empty()) {
        const QueuedJob q = shared_.front();
        shared_.pop_front();
        launch(d, q);
      }
    } else if (!cur.pending.empty()) {
      const QueuedJob q = cur.pending.front();
      cur.pending.pop_front();
      launch(d, q);
    }
  }

  /// GPU first, as everywhere else: a shared queue's head job goes to the
  /// higher-throughput device.
  void feed_idle_devices() {
    if (!device_busy(sim::DeviceKind::kGpu)) feed(sim::DeviceKind::kGpu);
    if (!device_busy(sim::DeviceKind::kCpu)) feed(sim::DeviceKind::kCpu);
  }

  void apply_ceilings() {
    sim::FreqLevel cpu_level = cpu_.current ? cpu_.current_level : 0;
    sim::FreqLevel gpu_level = gpu_.current ? gpu_.current_level : 0;
    if (model_dvfs_) {
      // Same backlog-weighted re-derivation as CoRunRuntime::execute.
      const model::CoRunPredictor& m = *predictor_;
      auto t_max = [&](std::size_t rec, sim::DeviceKind d) {
        return m.standalone_time(recs_[rec].name, d,
                                 config_.ladder(d).max_level());
      };
      if (cpu_.current && gpu_.current) {
        auto backlog = [&](sim::DeviceKind d, std::size_t current,
                           const std::deque<QueuedJob>& pending) {
          Seconds b = t_max(current, d);
          for (const QueuedJob& q : pending) b += t_max(q.rec, d);
          return b;
        };
        const Seconds b_cpu =
            backlog(sim::DeviceKind::kCpu, *cpu_.current, cpu_.pending);
        const Seconds b_gpu =
            backlog(sim::DeviceKind::kGpu, *gpu_.current, gpu_.pending);
        const auto pair = m.best_pair_weighted(
            recs_[*cpu_.current].name, recs_[*gpu_.current].name,
            current_cap_, b_cpu / t_max(*cpu_.current, sim::DeviceKind::kCpu),
            b_gpu / t_max(*gpu_.current, sim::DeviceKind::kGpu));
        if (pair) {
          cpu_level = pair->cpu;
          gpu_level = pair->gpu;
        }
      } else if (cpu_.current) {
        cpu_level = m.best_solo_level(recs_[*cpu_.current].name,
                                      sim::DeviceKind::kCpu, current_cap_)
                        .value_or(cpu_level);
      } else if (gpu_.current) {
        gpu_level = m.best_solo_level(recs_[*gpu_.current].name,
                                      sim::DeviceKind::kGpu, current_cap_)
                        .value_or(gpu_level);
      }
    }
    engine_.set_ceilings(cpu_.current ? cpu_level : 0,
                         gpu_.current ? gpu_level : 0);
  }

  // ---- fault application -------------------------------------------------

  void log_applied(const TimelineEntry& t, bool replanned,
                   std::string detail) {
    report_.log.push_back(AppliedFault{.event = t.event,
                                       .applied_at = engine_.now(),
                                       .replanned = replanned,
                                       .detail = std::move(detail)});
  }
  void log_skip(const TimelineEntry& t, const std::string& why) {
    log_applied(t, false, "skipped: " + why);
  }

  void apply(const TimelineEntry& t) {
    CORUN_TRACE_COUNTER("dynamic.events", 1);
    switch (t.event.kind) {
      case sim::FaultKind::kArrival: {
        CORUN_TRACE_INSTANT("dynamic", "fault.arrival");
        apply_arrival(t);
        break;
      }
      case sim::FaultKind::kCancel: {
        CORUN_TRACE_INSTANT("dynamic", "fault.cancel");
        apply_cancel(t);
        break;
      }
      case sim::FaultKind::kCapSet: {
        CORUN_TRACE_INSTANT("dynamic", "fault.cap");
        ++report_.cap_changes;
        current_cap_ = t.event.cap;
        engine_.set_power_cap(current_cap_);
        const bool re = options_.reschedule;
        if (re) replan(true);
        log_applied(t, re,
                    current_cap_
                        ? "cap=" + std::to_string(*current_cap_) + "W"
                        : "uncapped");
        break;
      }
      case sim::FaultKind::kProfileNoise: {
        CORUN_TRACE_INSTANT("dynamic", "fault.noise");
        apply_noise(t);
        break;
      }
      case sim::FaultKind::kMeterDropout: {
        CORUN_TRACE_INSTANT("dynamic", "fault.dropout");
        if (!t.dropout_end) ++report_.dropouts;
        engine_.set_meter_dropout(!t.dropout_end);
        log_applied(t, false, t.dropout_end ? "meter restored" : "meter held");
        break;
      }
    }
  }

  void apply_arrival(const TimelineEntry& t) {
    ++report_.arrivals;
    const auto desc = workload::rodinia_by_name(t.event.program);
    if (!desc) {
      log_skip(t, "unknown program '" + t.event.program + "'");
      return;
    }
    workload::KernelDescriptor d = *desc;
    d.input_scale = t.event.input_scale;
    std::string name;
    for (int ordinal = 1;; ++ordinal) {
      name = t.event.program + "#d" + std::to_string(ordinal);
      const auto clash = std::find_if(
          recs_.begin(), recs_.end(),
          [&](const JobRec& r) { return r.name == name; });
      if (clash == recs_.end()) break;
    }
    // Lower through Batch::add so arrivals get byte-identical specs to
    // batch-born jobs of the same descriptor and seed.
    workload::Batch one;
    one.add(d, t.event.seed, name);
    recs_.push_back(JobRec{.desc = one.job(0).descriptor,
                           .spec = one.job(0).spec,
                           .name = name,
                           .seed = t.event.seed});
    ensure_profile(recs_.size() - 1);
    if (options_.reschedule) {
      replan(true);
    } else {
      naive_place(recs_.size() - 1);
    }
    log_applied(t, options_.reschedule, "as " + name);
  }

  void apply_cancel(const TimelineEntry& t) {
    ++report_.cancellations;
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      if (recs_[i].state == JobRec::State::kPending ||
          recs_[i].state == JobRec::State::kRunning) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) {
      log_skip(t, "no job to cancel");
      return;
    }
    std::size_t victim;
    if (t.event.target >= 0 &&
        static_cast<std::size_t>(t.event.target) < recs_.size() &&
        std::find(eligible.begin(), eligible.end(),
                  static_cast<std::size_t>(t.event.target)) !=
            eligible.end()) {
      victim = static_cast<std::size_t>(t.event.target);
    } else {
      Rng rng(t.event.seed);
      victim = eligible[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(eligible.size()) - 1))];
    }
    JobRec& rec = recs_[victim];
    if (rec.state == JobRec::State::kRunning) {
      CORUN_CHECK(engine_.cancel(rec.engine_id));
      if (cursor(rec.device).current == victim) {
        cursor(rec.device).current.reset();
      }
    } else {
      auto drop = [&](std::deque<QueuedJob>& q) {
        q.erase(std::remove_if(
                    q.begin(), q.end(),
                    [&](const QueuedJob& e) { return e.rec == victim; }),
                q.end());
      };
      drop(cpu_.pending);
      drop(gpu_.pending);
      drop(shared_);
    }
    rec.state = JobRec::State::kCancelled;
    report_.cancelled.push_back(rec.name);
    const bool re = options_.reschedule;
    if (re) replan(true);
    log_applied(t, re, "evicted " + rec.name);
  }

  void apply_noise(const TimelineEntry& t) {
    ++report_.noise_events;
    // Drift the planner's view of one not-yet-started job; ground truth
    // (the spec the engine executes) is untouched, so the planner now
    // mispredicts that job by exactly `factor`.
    const std::vector<std::size_t> pending = unstarted();
    if (pending.empty()) {
      log_skip(t, "no pending job to drift");
      return;
    }
    Rng rng(t.event.seed);
    const std::size_t victim = pending[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1))];
    db_.scale_job(recs_[victim].name, t.event.factor);
    rebuild_predictor();
    const bool re = options_.reschedule;
    if (re) replan(true);
    log_applied(t, re, "drifted " + recs_[victim].name);
  }

  // ---- report ------------------------------------------------------------

  DynamicReport collect() {
    for (const JobRec& rec : recs_) {
      CORUN_CHECK_MSG(rec.state == JobRec::State::kDone ||
                          rec.state == JobRec::State::kCancelled,
                      "dynamic run left job unfinished: " + rec.name);
    }
    ExecutionReport& out = report_.report;
    for (const sim::JobStats& st : engine_.all_stats()) {
      if (st.cancelled) continue;
      CORUN_CHECK_MSG(st.finished, "job did not finish: " + st.name);
      out.jobs.push_back(JobOutcome{.job = id_to_rec_.at(st.id),
                                    .name = st.name,
                                    .device = st.device,
                                    .start = st.start_time,
                                    .finish = st.finish_time});
      out.makespan = std::max(out.makespan, st.finish_time);
    }
    const sim::Telemetry& telemetry = engine_.telemetry();
    out.energy = telemetry.energy();
    out.avg_power = telemetry.avg_power();
    out.cap_stats = telemetry.cap_stats();
    out.power_trace = telemetry.samples();
    out.thermal_trace = telemetry.thermal_samples();
    out.thermal = telemetry.thermal_stats();
    CORUN_TRACE_COUNTER("dynamic.replans",
                        static_cast<std::int64_t>(report_.replans));
    CORUN_TRACE_COUNTER("dynamic.arrivals",
                        static_cast<std::int64_t>(report_.arrivals));
    CORUN_TRACE_COUNTER("dynamic.cancellations",
                        static_cast<std::int64_t>(report_.cancellations));
    CORUN_TRACE_COUNTER("dynamic.cap_changes",
                        static_cast<std::int64_t>(report_.cap_changes));
    if (options_.plan_cache) {
      const sched::PlanCacheStats now = options_.plan_cache->stats();
      report_.plan_cache_hits = now.hits - cache_stats_at_start_.hits;
      report_.plan_cache_misses = now.misses - cache_stats_at_start_.misses;
      report_.plan_cache_warm_hits =
          now.warm_hits - cache_stats_at_start_.warm_hits;
    }
    if (recorder_ != nullptr) {
      const auto saved = sim::save_demand_trace(recorder_->trace(),
                                                options_.record_trace_path);
      CORUN_CHECK_MSG(saved.has_value(),
                      "failed to write demand trace: " +
                          options_.record_trace_path);
    }
    return std::move(report_);
  }

  const sim::MachineConfig& config_;
  const DynamicOptions& options_;
  profile::ProfileDB db_;          ///< private copy; events mutate it
  model::DegradationGrid grid_;
  std::unique_ptr<model::CoRunPredictor> predictor_;
  sim::RecordingMachine* recorder_ = nullptr;  ///< set when recording
  std::unique_ptr<sim::MachineModel> machine_;
  sim::MachineModel& engine_;

  std::vector<JobRec> recs_;
  std::vector<TimelineEntry> timeline_;
  std::map<sim::JobId, std::size_t> id_to_rec_;

  DeviceQueue cpu_;
  DeviceQueue gpu_;
  std::deque<QueuedJob> shared_;
  bool shared_queue_ = false;
  bool model_dvfs_ = false;
  std::optional<Watts> current_cap_;
  sched::PlanCacheStats cache_stats_at_start_;

  DynamicReport report_;
};

}  // namespace

const char* planner_rung_name(PlannerRung r) noexcept {
  switch (r) {
    case PlannerRung::kConfigured: return "configured";
    case PlannerRung::kDefaultFallback: return "default-fallback";
    case PlannerRung::kNaive: return "naive";
  }
  return "?";
}

std::string DynamicReport::summary() const {
  std::ostringstream os;
  os << report.summary() << '\n';
  os << "  events applied: " << log.size() << " (arrivals " << arrivals
     << ", cancels " << cancellations << ", cap changes " << cap_changes
     << ", noise " << noise_events << ", dropouts " << dropouts << ")\n";
  os << "  replans: " << replans << "  planner rung: "
     << planner_rung_name(last_rung) << "  fallback plans: " << fallback_plans
     << "\n";
  os << "  profile ladder: " << cross_run_estimates << " cross-run, "
     << online_sampled << " online-sampled (overhead "
     << sampling_overhead << " s)\n";
  if (!cancelled.empty()) {
    os << "  cancelled:";
    for (const std::string& name : cancelled) os << ' ' << name;
    os << '\n';
  }
  return os.str();
}

DynamicRuntime::DynamicRuntime(sim::MachineConfig config,
                               DynamicOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

DynamicReport DynamicRuntime::execute(const workload::Batch& batch,
                                      const profile::ProfileDB& db,
                                      const model::DegradationGrid& grid,
                                      const sim::FaultPlan& plan) const {
  const auto valid = plan.validate();
  CORUN_CHECK_MSG(valid.has_value(), "invalid fault plan");
  Executor executor(config_, options_, batch, db, grid, plan);
  return executor.run();
}

}  // namespace corun::runtime
