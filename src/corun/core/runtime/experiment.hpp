// Experiment harness: the end-to-end pipeline the evaluation section runs.
//
//   profile batch -> characterize degradation space -> build predictor ->
//   plan with each scheduler -> execute on ground truth -> compare.
//
// Fig. 10 / Fig. 11 are exactly `run_comparison` on the 8- and 16-program
// batches with a 15 W cap.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/runtime/dynamic.hpp"
#include "corun/core/runtime/runtime.hpp"
#include "corun/core/sched/scheduler.hpp"
#include "corun/profile/profile_db.hpp"
#include "corun/sim/fault_injector.hpp"
#include "corun/workload/batch.hpp"

namespace corun::runtime {

/// The model inputs every experiment needs. Building them is the expensive
/// offline stage; they are reusable across schedulers and caps.
struct ModelArtifacts {
  profile::ProfileDB db;
  model::DegradationGrid grid;
};

struct ArtifactOptions {
  std::uint64_t seed = 42;
  /// Stepping policy of every simulation the offline stage runs.
  sim::EngineMode engine_mode = sim::default_engine_mode();
  /// Machine backend of every offline simulation (profiling sweep and
  /// degradation characterization alike).
  sim::BackendSpec backend = sim::default_backend_spec();
  /// Frequency sub-sampling for profiling (empty = every level).
  std::vector<sim::FreqLevel> cpu_levels;
  std::vector<sim::FreqLevel> gpu_levels;
  /// Degradation-grid axes (empty = the paper's 11 levels).
  std::vector<GBps> grid_axis;
};

/// Runs the offline stage on the simulator.
[[nodiscard]] ModelArtifacts build_artifacts(const sim::MachineConfig& config,
                                             const workload::Batch& batch,
                                             const ArtifactOptions& options = {});

/// Ground-truth result of one scheduling method.
struct MethodResult {
  std::string name;
  Seconds makespan = 0.0;
  double speedup_vs_random = 0.0;
  Seconds planning_seconds = 0.0;
  ExecutionReport report;
};

struct ComparisonOptions {
  std::optional<Watts> cap = 15.0;
  int random_seeds = 20;          ///< Random baseline repetitions (paper: 20)
  std::uint64_t seed = 42;
  sim::EngineMode engine_mode = sim::default_engine_mode();
  sim::BackendSpec backend = sim::default_backend_spec();
  bool include_cpu_biased_default = true;
  bool record_power_traces = false;
};

struct ComparisonResult {
  Seconds random_mean_makespan = 0.0;
  std::vector<Seconds> random_makespans;
  std::vector<MethodResult> methods;  ///< Default_G, Default_C, HCS, HCS+
  Seconds lower_bound = 0.0;          ///< predicted optimal-makespan bound
  double bound_speedup_vs_random = 0.0;

  [[nodiscard]] const MethodResult& method(const std::string& name) const;
};

/// The full Fig. 10/11 experiment on one batch.
[[nodiscard]] ComparisonResult run_comparison(const sim::MachineConfig& config,
                                              const workload::Batch& batch,
                                              const ModelArtifacts& artifacts,
                                              const ComparisonOptions& options);

/// Plans with `scheduler` (timing the planning) and executes on ground truth.
[[nodiscard]] MethodResult run_method(const sim::MachineConfig& config,
                                      const workload::Batch& batch,
                                      const model::CoRunPredictor& predictor,
                                      sched::Scheduler& scheduler,
                                      const RuntimeOptions& rt_options,
                                      const std::optional<Watts>& cap);

/// Dynamic-event execution over the same offline artifacts: runs `batch`
/// through `plan`'s fault stream with the online rescheduler (see
/// runtime/dynamic.hpp for the event model and degradation ladder).
[[nodiscard]] DynamicReport run_dynamic(const sim::MachineConfig& config,
                                        const workload::Batch& batch,
                                        const ModelArtifacts& artifacts,
                                        const sim::FaultPlan& plan,
                                        const DynamicOptions& options);

}  // namespace corun::runtime
