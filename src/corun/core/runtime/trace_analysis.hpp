// Power-trace analysis: turns the RAPL-style sample stream into the
// cap-compliance statistics the Fig. 9 discussion reads off its plots —
// how long the package stayed under the cap, how violations cluster into
// episodes, and the distribution of sampled power.
#pragma once

#include <vector>

#include "corun/common/units.hpp"
#include "corun/sim/telemetry.hpp"

namespace corun::runtime {

/// One maximal run of consecutive over-cap samples.
struct ViolationEpisode {
  Seconds start = 0.0;
  Seconds end = 0.0;           ///< time of the last over-cap sample
  Watts worst_overshoot = 0.0; ///< max measured power minus cap

  [[nodiscard]] Seconds duration() const noexcept { return end - start; }
};

struct TraceAnalysis {
  std::size_t samples = 0;
  double under_cap_fraction = 0.0;  ///< fraction of samples at or below cap
  Watts mean_power = 0.0;
  Watts p95_power = 0.0;
  Watts max_power = 0.0;
  Watts worst_overshoot = 0.0;      ///< 0 when never above the cap
  std::vector<ViolationEpisode> episodes;

  [[nodiscard]] std::size_t episode_count() const noexcept {
    return episodes.size();
  }
  [[nodiscard]] Seconds longest_episode() const noexcept;
};

/// Analyzes measured power against `cap`. Uses the *measured* (noisy)
/// values — the same signal the governor and an operator's dashboard see.
[[nodiscard]] TraceAnalysis analyze_trace(
    const std::vector<sim::PowerSample>& trace, Watts cap);

/// Centered moving average of the measured power (window = 2*radius + 1
/// samples, truncated at the edges); smooths sensor noise for plotting.
[[nodiscard]] std::vector<Watts> smooth_power(
    const std::vector<sim::PowerSample>& trace, std::size_t radius);

}  // namespace corun::runtime
