// Timeline rendering: turns an execution report (or a predicted
// evaluation) into a text Gantt chart plus device-utilization statistics.
// Used by corun-run's --gantt flag and the examples; also handy when
// debugging why a schedule under-performs (idle gaps are visible at a
// glance).
#pragma once

#include <string>
#include <vector>

#include "corun/core/runtime/report.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"

namespace corun::runtime {

/// Device busy/idle statistics extracted from a report.
struct UtilizationStats {
  Seconds makespan = 0.0;
  Seconds cpu_busy = 0.0;
  Seconds gpu_busy = 0.0;

  [[nodiscard]] double cpu_utilization() const noexcept {
    return makespan > 0.0 ? cpu_busy / makespan : 0.0;
  }
  [[nodiscard]] double gpu_utilization() const noexcept {
    return makespan > 0.0 ? gpu_busy / makespan : 0.0;
  }
};

[[nodiscard]] UtilizationStats utilization(const ExecutionReport& report);

/// Renders the report as a two-row text Gantt chart, `width` characters
/// wide. Each job is labelled with a letter; a legend follows. Example:
///
///   CPU |aaaaaaaaabbbbbbbb...cccccc|
///   GPU |ddddddeeeeeeefffffffggggg.|
///        a=dwt2d b=lud ...
[[nodiscard]] std::string render_gantt(const ExecutionReport& report,
                                       std::size_t width = 72);

/// Same rendering for a *predicted* timeline from the analytic evaluator.
[[nodiscard]] std::string render_gantt(const sched::Evaluation& evaluation,
                                       const std::vector<std::string>& names,
                                       std::size_t width = 72);

}  // namespace corun::runtime
