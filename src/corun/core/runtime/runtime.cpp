#include "corun/core/runtime/runtime.hpp"

#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "corun/common/check.hpp"

namespace corun::runtime {
namespace {

/// Tracks which batch job runs on which device and at which scheduled level.
struct DeviceCursor {
  std::deque<sched::ScheduledJob> pending;
  std::optional<std::size_t> current;        ///< batch index
  sim::FreqLevel current_level = 0;
};

}  // namespace

CoRunRuntime::CoRunRuntime(sim::MachineConfig config, RuntimeOptions options)
    : config_(std::move(config)), options_(options) {}

sim::EngineOptions CoRunRuntime::engine_options() const {
  sim::EngineOptions eo;
  eo.mode = options_.engine_mode;
  eo.seed = options_.seed;
  eo.power_cap = options_.cap;
  eo.policy = options_.cap ? options_.policy : sim::GovernorPolicy::kNone;
  eo.sample_interval = options_.sample_interval;
  eo.record_samples = options_.record_power_trace;
  eo.thermal = options_.thermal;
  return eo;
}

ExecutionReport CoRunRuntime::execute(const workload::Batch& batch,
                                      const sched::Schedule& schedule) const {
  schedule.validate(batch.size());
  // The machine comes from the backend factory (event / analytic / replay);
  // a requested demand-trace recording wraps it in the recorder decorator
  // instead (recording an analytic run is fine — the spec's engine mode is
  // honoured the same way make_machine_model honours it).
  std::unique_ptr<sim::MachineModel> machine;
  sim::RecordingMachine* recorder = nullptr;
  if (!options_.record_trace_path.empty()) {
    sim::EngineOptions eo = engine_options();
    if (options_.backend.kind == sim::BackendKind::kAnalytic) {
      eo.mode = sim::EngineMode::kAnalytic;
    } else if (eo.mode == sim::EngineMode::kAnalytic) {
      eo.mode = sim::EngineMode::kEvent;
    }
    auto rec = std::make_unique<sim::RecordingMachine>(config_, eo);
    recorder = rec.get();
    machine = std::move(rec);
  } else {
    machine = sim::make_machine_model(config_, engine_options(),
                                      options_.backend);
  }
  sim::MachineModel& engine = *machine;

  std::map<sim::JobId, std::size_t> id_to_batch;
  DeviceCursor cpu;
  DeviceCursor gpu;
  std::deque<sched::ScheduledJob> shared(schedule.shared.begin(),
                                         schedule.shared.end());
  cpu.pending.assign(schedule.cpu.begin(), schedule.cpu.end());
  gpu.pending.assign(schedule.gpu.begin(), schedule.gpu.end());

  const bool model_dvfs = schedule.model_dvfs && options_.predictor != nullptr;
  CORUN_CHECK_MSG(!schedule.model_dvfs || options_.predictor != nullptr,
                  "model_dvfs schedule executed without a predictor");
  auto apply_ceilings = [&] {
    sim::FreqLevel cpu_level = cpu.current ? cpu.current_level : 0;
    sim::FreqLevel gpu_level = gpu.current ? gpu.current_level : 0;
    if (model_dvfs) {
      // Re-derive the operating point for the current pairing, as the
      // paper's runtime does whenever the running set changes. Backlog
      // weighting keeps the busier device's pipeline fed (current job is
      // counted whole — the runtime does not track partial progress).
      const model::CoRunPredictor& m = *options_.predictor;
      auto t_max = [&](std::size_t job, sim::DeviceKind d) {
        return m.standalone_time(batch.job(job).instance_name, d,
                                 config_.ladder(d).max_level());
      };
      if (cpu.current && gpu.current) {
        auto backlog = [&](sim::DeviceKind d, std::size_t current,
                           const std::deque<sched::ScheduledJob>& pending) {
          Seconds b = t_max(current, d);
          for (const sched::ScheduledJob& q : pending) b += t_max(q.job, d);
          return b;
        };
        const Seconds b_cpu =
            backlog(sim::DeviceKind::kCpu, *cpu.current, cpu.pending);
        const Seconds b_gpu =
            backlog(sim::DeviceKind::kGpu, *gpu.current, gpu.pending);
        const auto pair = m.best_pair_weighted(
            batch.job(*cpu.current).instance_name,
            batch.job(*gpu.current).instance_name, options_.cap,
            b_cpu / t_max(*cpu.current, sim::DeviceKind::kCpu),
            b_gpu / t_max(*gpu.current, sim::DeviceKind::kGpu));
        if (pair) {
          cpu_level = pair->cpu;
          gpu_level = pair->gpu;
        }
      } else if (cpu.current) {
        cpu_level = m.best_solo_level(batch.job(*cpu.current).instance_name,
                                      sim::DeviceKind::kCpu, options_.cap)
                        .value_or(cpu_level);
      } else if (gpu.current) {
        gpu_level = m.best_solo_level(batch.job(*gpu.current).instance_name,
                                      sim::DeviceKind::kGpu, options_.cap)
                        .value_or(gpu_level);
      }
    }
    // Idle domains park at their floor; running domains request the chosen
    // level and the governor may still clamp below it.
    engine.set_ceilings(cpu.current ? cpu_level : 0,
                        gpu.current ? gpu_level : 0);
  };

  auto launch = [&](sim::DeviceKind d, const sched::ScheduledJob& sj) {
    DeviceCursor& cur = d == sim::DeviceKind::kCpu ? cpu : gpu;
    const sim::JobId id = engine.launch(batch.job(sj.job).spec, d);
    id_to_batch[id] = sj.job;
    cur.current = sj.job;
    cur.current_level = config_.ladder(d).clamp(sj.level);
  };

  auto feed = [&](sim::DeviceKind d) {
    DeviceCursor& cur = d == sim::DeviceKind::kCpu ? cpu : gpu;
    cur.current.reset();
    if (schedule.shared_queue) {
      if (!shared.empty()) {
        const sched::ScheduledJob sj = shared.front();
        shared.pop_front();
        launch(d, sj);
      }
    } else if (!cur.pending.empty()) {
      const sched::ScheduledJob sj = cur.pending.front();
      cur.pending.pop_front();
      launch(d, sj);
    }
  };

  // Kick off the co-run phase. GPU first so a shared queue's head goes to
  // the higher-throughput device, as in the evaluator.
  if (schedule.cpu_batch_launch) {
    // Default baseline: the whole CPU partition starts at once and
    // time-shares under the OS scheduler.
    for (const sched::ScheduledJob& sj : schedule.cpu) {
      const sim::JobId id = engine.launch(batch.job(sj.job).spec,
                                          sim::DeviceKind::kCpu);
      id_to_batch[id] = sj.job;
      cpu.current = sj.job;  // representative; all share one level request
      cpu.current_level = config_.cpu_ladder.clamp(sj.level);
    }
    cpu.pending.clear();
    feed(sim::DeviceKind::kGpu);
  } else {
    feed(sim::DeviceKind::kGpu);
    feed(sim::DeviceKind::kCpu);
  }
  apply_ceilings();

  while (!engine.idle()) {
    const auto events = engine.run_until_event();
    for (const sim::JobEvent& ev : events) {
      if (ev.device == sim::DeviceKind::kGpu) {
        feed(sim::DeviceKind::kGpu);
      } else if (!schedule.cpu_batch_launch) {
        feed(sim::DeviceKind::kCpu);
      } else if (engine.device_idle(sim::DeviceKind::kCpu)) {
        cpu.current.reset();
      }
    }
    apply_ceilings();
  }

  // Solo tail: each job runs with the other device idle.
  for (const sched::SoloJob& s : schedule.solo) {
    const sim::JobId id = engine.launch(batch.job(s.job).spec, s.device);
    id_to_batch[id] = s.job;
    if (s.device == sim::DeviceKind::kCpu) {
      cpu.current = s.job;
      cpu.current_level = config_.cpu_ladder.clamp(s.level);
      gpu.current.reset();
    } else {
      gpu.current = s.job;
      gpu.current_level = config_.gpu_ladder.clamp(s.level);
      cpu.current.reset();
    }
    apply_ceilings();
    engine.run_until_idle();
  }

  // Collect outcomes.
  ExecutionReport report;
  for (const sim::JobStats& st : engine.all_stats()) {
    CORUN_CHECK_MSG(st.finished, "job did not finish: " + st.name);
    report.jobs.push_back(JobOutcome{.job = id_to_batch.at(st.id),
                                     .name = st.name,
                                     .device = st.device,
                                     .start = st.start_time,
                                     .finish = st.finish_time});
    report.makespan = std::max(report.makespan, st.finish_time);
  }
  const sim::Telemetry& telemetry = engine.telemetry();
  report.energy = telemetry.energy();
  report.avg_power = telemetry.avg_power();
  report.cap_stats = telemetry.cap_stats();
  report.power_trace = telemetry.samples();
  report.thermal_trace = telemetry.thermal_samples();
  report.thermal = telemetry.thermal_stats();

  if (recorder != nullptr) {
    const auto saved = sim::save_demand_trace(recorder->trace(),
                                              options_.record_trace_path);
    CORUN_CHECK_MSG(saved.has_value(),
                    "failed to write demand trace: " +
                        options_.record_trace_path);
  }
  return report;
}

}  // namespace corun::runtime
