// CoRunRuntime: executes a schedule on the simulated machine.
//
// This is the prototype co-scheduling runtime of the paper's Sec. I
// ("We integrate the techniques into a prototype co-scheduling runtime"):
// it takes a planned schedule, drives the two devices' job sequences,
// re-applies the scheduled frequency pair whenever the running set changes,
// and leaves residual cap enforcement to the reactive governor. All three
// schedule shapes are supported — two sequences (+ solo tail), the Default
// baseline's batch-launched CPU partition, and the Random baseline's shared
// pull queue.
#pragma once

#include <optional>

#include <string>

#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/runtime/report.hpp"
#include "corun/core/sched/schedule.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/machine.hpp"
#include "corun/workload/batch.hpp"

namespace corun::runtime {

struct RuntimeOptions {
  std::optional<Watts> cap;
  sim::GovernorPolicy policy = sim::GovernorPolicy::kGpuBiased;
  std::uint64_t seed = 42;
  sim::EngineMode engine_mode = sim::default_engine_mode();
  Seconds sample_interval = 1.0;  ///< power-trace cadence
  bool record_power_trace = true;
  /// Engage the RC thermal model + throttle governor (docs/thermal.md).
  bool thermal = sim::default_thermal();

  /// Machine backend executing the schedule (event/analytic/replay).
  sim::BackendSpec backend = sim::default_backend_spec();
  /// When non-empty, wrap the machine in a RecordingMachine and write the
  /// per-phase demand trace (demand_trace.hpp CSV) here after execution.
  std::string record_trace_path;

  /// Required to execute Schedule::model_dvfs schedules: the runtime
  /// re-derives the operating point for each new pairing from this model
  /// (must outlive the runtime). Null is fine for fixed-level schedules.
  const model::CoRunPredictor* predictor = nullptr;
};

class CoRunRuntime {
 public:
  CoRunRuntime(sim::MachineConfig config, RuntimeOptions options);

  /// Runs `schedule` over `batch` to completion and reports ground truth.
  [[nodiscard]] ExecutionReport execute(const workload::Batch& batch,
                                        const sched::Schedule& schedule) const;

  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }
  [[nodiscard]] const RuntimeOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] sim::EngineOptions engine_options() const;

  sim::MachineConfig config_;
  RuntimeOptions options_;
};

}  // namespace corun::runtime
