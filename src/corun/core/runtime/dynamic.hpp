// DynamicRuntime: the long-running-service execution mode.
//
// CoRunRuntime executes one planned schedule to completion and assumes the
// world holds still. DynamicRuntime drops that assumption: it drives the
// same simulated machine through a FaultPlan — jobs arriving and being
// withdrawn mid-run, the power cap moving under thermal pressure, the
// planner's profiles drifting, the power sensor dropping out — and reacts
// online. On every event it re-plans the not-yet-started jobs with the
// configured scheduler (any registry name), degrades gracefully when the
// profile DB lacks an arriving job, and leaves transition-window cap
// enforcement to the reactive governor, which keeps running throughout.
//
// The degradation ladder for an arriving job the planner has never seen:
//   1. already profiled under the same instance name   -> use as-is;
//   2. another instance of the same program profiled   -> cross-run scaling
//      (ProfileDB::add_scaled_instance, Sec. V-C's third acquisition path);
//   3. unknown program                                 -> online-profiler
//      sampling at sparse levels (simulated seconds are reported as
//      sampling_overhead);
//   4. the configured scheduler still fails to plan    -> Default scheduler;
//   5. Default fails too                               -> naive placement
//      (append to the shorter device queue at max frequency) — also the
//      arrival policy when rescheduling is disabled.
//
// Everything is deterministic: same batch + plan + options => byte-identical
// reports at any --jobs count and in either engine mode (pinned by
// tests/runtime/test_dynamic_runtime.cpp and the CLI pipeline test).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "corun/core/model/degradation_space.hpp"
#include "corun/core/runtime/report.hpp"
#include "corun/core/sched/plan_cache/plan_cache.hpp"
#include "corun/profile/profile_db.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/fault_injector.hpp"
#include "corun/sim/machine.hpp"
#include "corun/workload/batch.hpp"

namespace corun::runtime {

struct DynamicOptions {
  std::optional<Watts> cap;            ///< initial cap (events may move it)
  sim::GovernorPolicy policy = sim::GovernorPolicy::kGpuBiased;
  std::uint64_t seed = 42;
  sim::EngineMode engine_mode = sim::default_engine_mode();
  Seconds sample_interval = 1.0;       ///< power-trace cadence
  bool record_power_trace = true;
  Seconds cap_window = 0.0;            ///< RAPL PL1 window (0 = instantaneous)
  /// Engage the RC thermal model + throttle governor (docs/thermal.md).
  bool thermal = sim::default_thermal();

  /// Machine backend the run executes on (event/analytic/replay).
  sim::BackendSpec backend = sim::default_backend_spec();
  /// When non-empty, record the run's per-phase demand trace (see
  /// demand_trace.hpp) and write it here after execution.
  std::string record_trace_path;

  /// Registry name of the planner used for the initial plan and every
  /// re-plan ("hcs+", "hcs", "default", "random", "bnb", "exhaustive").
  std::string scheduler = "hcs+";

  /// When false, events still apply but the plan never changes: arrivals
  /// are placed naively and the governor alone absorbs cap moves — the
  /// baseline the fault-injection suite compares against.
  bool reschedule = true;

  /// Online-sampling window for rung 3 of the degradation ladder.
  Seconds online_sample_seconds = 2.0;

  /// Memoized plan cache consulted before every (re-)plan; null = off. May
  /// be shared across runs — repeated sub-problems (same pending set at the
  /// same cap) then skip the search entirely, and near hits warm-start the
  /// branch-and-bound incumbent. Cache state never changes the schedules
  /// or reports produced (exact hits replay identical requests; warm hints
  /// only tighten pruning and are disabled whenever the B&B node budget
  /// could truncate the search), so runs stay byte-identical with it on or
  /// off as long as every search ran to completion — a truncated B&B is
  /// interleaving-dependent with or without a cache, and the report flags
  /// it via `bnb_budget_exhausted`. The default budget can never bind for
  /// batches within the default job limit.
  std::shared_ptr<sched::PlanCache> plan_cache;

  /// Incremental plan repair for branch-and-bound re-plans. On an event
  /// touching k of n pending jobs, the executor locally repairs the plan
  /// it was executing — survivors keep their device, arrivals join their
  /// best solo device — and donates the repaired schedule to the search as
  /// an incumbent hint. The search re-encodes it into leaf space and falls
  /// back to the full result only when a strictly better leaf exists
  /// (DynamicReport::repair_fallbacks counts those). Like the plan cache's
  /// warm starts, repair never changes the schedules or reports produced —
  /// runs are byte-identical with it on or off — it only lets the search
  /// start from a near-optimal bound and prune most of the tree.
  bool plan_repair = true;
};

/// What happened when one fault event was applied.
struct AppliedFault {
  sim::FaultEvent event;
  Seconds applied_at = 0.0;  ///< simulation time of the applying tick
  bool replanned = false;
  std::string detail;        ///< human-readable resolution, e.g. the target
};

/// Which planner produced the plan currently being executed.
enum class PlannerRung {
  kConfigured,       ///< options.scheduler via the registry
  kDefaultFallback,  ///< rung 4: Default after the configured planner failed
  kNaive,            ///< rung 5: append-to-shorter-queue
};

[[nodiscard]] const char* planner_rung_name(PlannerRung r) noexcept;

struct DynamicReport {
  /// Ground truth over the jobs that ran (cancelled jobs are excluded from
  /// `jobs` and listed in `cancelled`; makespan covers finished jobs).
  ExecutionReport report;

  std::vector<AppliedFault> log;       ///< every applied event, in order
  std::vector<std::string> cancelled;  ///< instance names evicted by events

  std::size_t replans = 0;
  std::size_t arrivals = 0;
  std::size_t cancellations = 0;
  std::size_t cap_changes = 0;
  std::size_t noise_events = 0;
  std::size_t dropouts = 0;

  std::size_t cross_run_estimates = 0;  ///< ladder rung 2 uses
  std::size_t online_sampled = 0;       ///< ladder rung 3 uses
  std::size_t fallback_plans = 0;       ///< rung 4/5 plans
  Seconds sampling_overhead = 0.0;      ///< simulated seconds of rung-3 runs
  PlannerRung last_rung = PlannerRung::kConfigured;

  /// Plan-cache activity attributable to this run (deltas over the shared
  /// cache's counters; all zero when no cache was configured). Reported
  /// separately from summary() so cached and uncached runs stay
  /// byte-identical on stdout.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t plan_cache_warm_hits = 0;

  /// Plans where branch-and-bound stopped on its node budget. Non-zero
  /// means those searches were truncated: the schedules are still valid
  /// ("HCS+ or better"), but the byte-identity guarantees across --jobs,
  /// engine modes, and plan-cache state are scoped to runs where this
  /// stays zero (always true at the default budget and job limit).
  std::size_t bnb_budget_exhausted = 0;

  /// Re-plans where the branch-and-bound search accepted a repaired
  /// previous plan as its incumbent hint, and how many of those repairs
  /// the search then beat with a strictly better leaf (the repair
  /// "fallbacks"). Reported separately from summary() — like the
  /// plan-cache counters — so repair on/off runs stay byte-identical on
  /// stdout.
  std::size_t plan_repairs = 0;
  std::size_t repair_fallbacks = 0;

  [[nodiscard]] std::string summary() const;
};

class DynamicRuntime {
 public:
  DynamicRuntime(sim::MachineConfig config, DynamicOptions options);

  /// Runs `batch` under `plan` to completion (all non-cancelled jobs,
  /// including arrivals, finish). `db` and `grid` are the offline model
  /// artifacts; the runtime works on a private copy of `db` so noise events
  /// and sampled arrivals never leak back to the caller.
  [[nodiscard]] DynamicReport execute(const workload::Batch& batch,
                                      const profile::ProfileDB& db,
                                      const model::DegradationGrid& grid,
                                      const sim::FaultPlan& plan) const;

  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }
  [[nodiscard]] const DynamicOptions& options() const noexcept {
    return options_;
  }

 private:
  sim::MachineConfig config_;
  DynamicOptions options_;
};

}  // namespace corun::runtime
