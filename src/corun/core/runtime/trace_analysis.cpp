#include "corun/core/runtime/trace_analysis.hpp"

#include <algorithm>

#include "corun/common/check.hpp"
#include "corun/common/stats.hpp"

namespace corun::runtime {

Seconds TraceAnalysis::longest_episode() const noexcept {
  Seconds longest = 0.0;
  for (const ViolationEpisode& e : episodes) {
    longest = std::max(longest, e.duration());
  }
  return longest;
}

TraceAnalysis analyze_trace(const std::vector<sim::PowerSample>& trace,
                            Watts cap) {
  CORUN_CHECK(cap > 0.0);
  TraceAnalysis out;
  out.samples = trace.size();
  if (trace.empty()) return out;

  std::vector<double> powers;
  powers.reserve(trace.size());
  std::size_t under = 0;
  const ViolationEpisode none{};
  ViolationEpisode current = none;
  bool in_episode = false;
  for (const sim::PowerSample& s : trace) {
    powers.push_back(s.measured);
    out.max_power = std::max(out.max_power, s.measured);
    if (s.measured <= cap) {
      ++under;
      if (in_episode) {
        out.episodes.push_back(current);
        in_episode = false;
      }
      continue;
    }
    const Watts overshoot = s.measured - cap;
    out.worst_overshoot = std::max(out.worst_overshoot, overshoot);
    if (!in_episode) {
      in_episode = true;
      current = ViolationEpisode{.start = s.t, .end = s.t,
                                 .worst_overshoot = overshoot};
    } else {
      current.end = s.t;
      current.worst_overshoot = std::max(current.worst_overshoot, overshoot);
    }
  }
  if (in_episode) out.episodes.push_back(current);

  out.under_cap_fraction =
      static_cast<double>(under) / static_cast<double>(trace.size());
  out.mean_power = mean(powers);
  out.p95_power = percentile(powers, 0.95);
  return out;
}

std::vector<Watts> smooth_power(const std::vector<sim::PowerSample>& trace,
                                std::size_t radius) {
  std::vector<Watts> out(trace.size(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t lo = i >= radius ? i - radius : 0;
    const std::size_t hi = std::min(trace.size() - 1, i + radius);
    Watts sum = 0.0;
    for (std::size_t k = lo; k <= hi; ++k) sum += trace[k].measured;
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace corun::runtime
