// Execution reports: what actually happened when a schedule ran on the
// machine — ground truth makespan, per-job outcomes, energy, and the power
// trace the Fig. 8/9 experiments inspect.
#pragma once

#include <string>
#include <vector>

#include "corun/common/units.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/telemetry.hpp"

namespace corun::runtime {

struct JobOutcome {
  std::size_t job = 0;  ///< batch index
  std::string name;
  sim::DeviceKind device = sim::DeviceKind::kCpu;
  Seconds start = 0.0;
  Seconds finish = 0.0;

  [[nodiscard]] Seconds runtime() const noexcept { return finish - start; }
};

struct ExecutionReport {
  Seconds makespan = 0.0;
  std::vector<JobOutcome> jobs;
  Joules energy = 0.0;
  Watts avg_power = 0.0;
  sim::CapViolationStats cap_stats;
  std::vector<sim::PowerSample> power_trace;
  /// Temperature trace + aggregate thermal stats; empty/zero unless the run
  /// had the thermal model enabled (then thermal_trace zips with
  /// power_trace by index — same sample points).
  std::vector<sim::ThermalSample> thermal_trace;
  sim::ThermalStats thermal;
  Seconds planning_seconds = 0.0;  ///< wall-clock cost of computing the plan

  /// Jobs completed per hour of makespan — the throughput the paper's
  /// objective maximizes (equivalent to minimizing makespan for a fixed set).
  [[nodiscard]] double throughput_per_hour() const noexcept;

  /// Planning cost as a fraction of the makespan (paper: < 0.1%).
  [[nodiscard]] double planning_overhead() const noexcept;

  /// Energy-delay product (J*s) — the energy-efficiency figure of merit the
  /// power-cap literature optimizes alongside throughput.
  [[nodiscard]] double energy_delay_product() const noexcept;

  /// Average energy spent per completed job (J).
  [[nodiscard]] Joules energy_per_job() const noexcept;

  [[nodiscard]] std::string summary() const;
};

}  // namespace corun::runtime
