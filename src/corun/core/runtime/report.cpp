#include "corun/core/runtime/report.hpp"

#include <sstream>

namespace corun::runtime {

double ExecutionReport::throughput_per_hour() const noexcept {
  if (makespan <= 0.0) return 0.0;
  return static_cast<double>(jobs.size()) * 3600.0 / makespan;
}

double ExecutionReport::planning_overhead() const noexcept {
  if (makespan <= 0.0) return 0.0;
  return planning_seconds / makespan;
}

double ExecutionReport::energy_delay_product() const noexcept {
  return energy * makespan;
}

Joules ExecutionReport::energy_per_job() const noexcept {
  return jobs.empty() ? 0.0 : energy / static_cast<double>(jobs.size());
}

std::string ExecutionReport::summary() const {
  std::ostringstream oss;
  oss.precision(4);
  oss << "makespan=" << makespan << "s jobs=" << jobs.size()
      << " energy=" << energy << "J avg_power=" << avg_power << "W";
  if (cap_stats.samples > 0) {
    oss << " cap_over=" << cap_stats.over_fraction() * 100.0 << "%"
        << " worst_overshoot=" << cap_stats.worst_overshoot << "W";
  }
  return oss.str();
}

}  // namespace corun::runtime
