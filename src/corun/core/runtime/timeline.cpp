#include "corun/core/runtime/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "corun/common/check.hpp"

namespace corun::runtime {
namespace {

char label_for(std::size_t index) {
  constexpr char kLabels[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  return kLabels[index % (sizeof(kLabels) - 1)];
}

/// Paints one occupancy interval onto a row of width `width`.
void paint(std::string& row, Seconds start, Seconds end, Seconds makespan,
           char c, std::size_t width) {
  if (makespan <= 0.0) return;
  auto clamp_idx = [&](double t) {
    const auto idx = static_cast<std::ptrdiff_t>(t / makespan *
                                                 static_cast<double>(width));
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(width) - 1));
  };
  const std::size_t lo = clamp_idx(start);
  const std::size_t hi = clamp_idx(end - 1e-12);
  for (std::size_t i = lo; i <= hi && i < width; ++i) row[i] = c;
}

std::string compose(const std::string& cpu_row, const std::string& gpu_row,
                    const std::map<char, std::string>& legend,
                    Seconds makespan) {
  std::ostringstream oss;
  oss << "CPU |" << cpu_row << "|\n";
  oss << "GPU |" << gpu_row << "|\n";
  oss << "     0s";
  oss.precision(1);
  oss << std::fixed;
  const std::string pad(cpu_row.size() > 12 ? cpu_row.size() - 10 : 1, ' ');
  oss << pad << makespan << "s\n  ";
  std::size_t on_line = 0;
  for (const auto& [c, name] : legend) {
    oss << ' ' << c << '=' << name;
    if (++on_line % 6 == 0) oss << "\n  ";
  }
  oss << '\n';
  return oss.str();
}

}  // namespace

UtilizationStats utilization(const ExecutionReport& report) {
  UtilizationStats stats;
  stats.makespan = report.makespan;
  // CPU time-sharing can overlap job outcomes, so busy time per device is
  // computed by merging intervals rather than summing runtimes.
  for (const sim::DeviceKind d :
       {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
    std::vector<std::pair<Seconds, Seconds>> intervals;
    for (const JobOutcome& j : report.jobs) {
      if (j.device == d) intervals.emplace_back(j.start, j.finish);
    }
    std::sort(intervals.begin(), intervals.end());
    Seconds busy = 0.0;
    Seconds cur_start = 0.0;
    Seconds cur_end = -1.0;
    for (const auto& [s, e] : intervals) {
      if (e <= cur_end) continue;
      if (s > cur_end) {
        if (cur_end > cur_start) busy += cur_end - cur_start;
        cur_start = s;
      }
      cur_end = e;
    }
    if (cur_end > cur_start) busy += cur_end - cur_start;
    (d == sim::DeviceKind::kCpu ? stats.cpu_busy : stats.gpu_busy) = busy;
  }
  return stats;
}

std::string render_gantt(const ExecutionReport& report, std::size_t width) {
  CORUN_CHECK(width >= 8);
  std::string cpu_row(width, '.');
  std::string gpu_row(width, '.');
  std::map<char, std::string> legend;
  for (const JobOutcome& j : report.jobs) {
    const char c = label_for(j.job);
    legend[c] = j.name;
    paint(j.device == sim::DeviceKind::kCpu ? cpu_row : gpu_row, j.start,
          j.finish, report.makespan, c, width);
  }
  return compose(cpu_row, gpu_row, legend, report.makespan);
}

std::string render_gantt(const sched::Evaluation& evaluation,
                         const std::vector<std::string>& names,
                         std::size_t width) {
  CORUN_CHECK(width >= 8);
  std::string cpu_row(width, '.');
  std::string gpu_row(width, '.');
  std::map<char, std::string> legend;
  for (const sched::EvalSegment& seg : evaluation.timeline) {
    if (seg.cpu_job) {
      const char c = label_for(*seg.cpu_job);
      legend[c] = *seg.cpu_job < names.size() ? names[*seg.cpu_job]
                                              : "#" + std::to_string(*seg.cpu_job);
      paint(cpu_row, seg.start, seg.end, evaluation.makespan, c, width);
    }
    if (seg.gpu_job) {
      const char c = label_for(*seg.gpu_job);
      legend[c] = *seg.gpu_job < names.size() ? names[*seg.gpu_job]
                                              : "#" + std::to_string(*seg.gpu_job);
      paint(gpu_row, seg.start, seg.end, evaluation.makespan, c, width);
    }
  }
  return compose(cpu_row, gpu_row, legend, evaluation.makespan);
}

}  // namespace corun::runtime
