#include "corun/core/runtime/experiment.hpp"

#include <algorithm>

#include "corun/common/check.hpp"
#include "corun/common/stats.hpp"
#include "corun/core/sched/default_scheduler.hpp"
#include "corun/core/sched/hcs.hpp"
#include "corun/core/sched/lower_bound.hpp"
#include "corun/core/sched/random_scheduler.hpp"
#include "corun/core/sched/refiner.hpp"
#include "corun/profile/profiler.hpp"

namespace corun::runtime {

ModelArtifacts build_artifacts(const sim::MachineConfig& config,
                               const workload::Batch& batch,
                               const ArtifactOptions& options) {
  profile::ProfilerOptions po;
  po.seed = options.seed;
  po.engine_mode = options.engine_mode;
  po.backend = options.backend;
  po.cpu_levels = options.cpu_levels;
  po.gpu_levels = options.gpu_levels;
  const profile::Profiler profiler(config, po);

  ModelArtifacts artifacts;
  artifacts.db = profiler.profile_batch(batch);

  model::CharacterizationOptions co;
  co.seed = options.seed;
  co.engine_mode = options.engine_mode;
  co.backend = options.backend;
  const model::DegradationSpaceBuilder builder(config, co);
  artifacts.grid = options.grid_axis.empty()
                       ? builder.characterize()
                       : builder.characterize(options.grid_axis,
                                              options.grid_axis);
  return artifacts;
}

MethodResult run_method(const sim::MachineConfig& config,
                        const workload::Batch& batch,
                        const model::CoRunPredictor& predictor,
                        sched::Scheduler& scheduler,
                        const RuntimeOptions& rt_options,
                        const std::optional<Watts>& cap) {
  sched::SchedulerContext ctx;
  ctx.batch = &batch;
  ctx.predictor = &predictor;
  ctx.cap = cap;
  ctx.policy = rt_options.policy;

  const auto t0 = std::chrono::steady_clock::now();
  const sched::Schedule schedule = scheduler.plan(ctx);
  const auto t1 = std::chrono::steady_clock::now();

  RuntimeOptions wired = rt_options;
  wired.predictor = &predictor;  // model_dvfs schedules need it
  const CoRunRuntime runtime(config, wired);
  MethodResult result;
  result.name = scheduler.name();
  result.report = runtime.execute(batch, schedule);
  result.planning_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.report.planning_seconds = result.planning_seconds;
  result.makespan = result.report.makespan;
  return result;
}

DynamicReport run_dynamic(const sim::MachineConfig& config,
                          const workload::Batch& batch,
                          const ModelArtifacts& artifacts,
                          const sim::FaultPlan& plan,
                          const DynamicOptions& options) {
  const DynamicRuntime runtime(config, options);
  return runtime.execute(batch, artifacts.db, artifacts.grid, plan);
}

const MethodResult& ComparisonResult::method(const std::string& name) const {
  const auto it =
      std::find_if(methods.begin(), methods.end(),
                   [&](const MethodResult& m) { return m.name == name; });
  CORUN_CHECK_MSG(it != methods.end(), "no method result named " + name);
  return *it;
}

ComparisonResult run_comparison(const sim::MachineConfig& config,
                                const workload::Batch& batch,
                                const ModelArtifacts& artifacts,
                                const ComparisonOptions& options) {
  const model::CoRunPredictor predictor(artifacts.db, artifacts.grid, config);

  RuntimeOptions rt;
  rt.cap = options.cap;
  rt.policy = sim::GovernorPolicy::kGpuBiased;
  rt.seed = options.seed;
  rt.engine_mode = options.engine_mode;
  rt.backend = options.backend;
  rt.record_power_trace = options.record_power_traces;

  ComparisonResult out;

  // Random baseline, averaged over seeds (paper: 20 runs).
  CORUN_CHECK(options.random_seeds > 0);
  Accumulator random_acc;
  for (int s = 0; s < options.random_seeds; ++s) {
    sched::RandomScheduler random(options.seed + static_cast<std::uint64_t>(s));
    const MethodResult r =
        run_method(config, batch, predictor, random, rt, options.cap);
    out.random_makespans.push_back(r.makespan);
    random_acc.add(r.makespan);
  }
  out.random_mean_makespan = random_acc.mean();

  auto add_method = [&](sched::Scheduler& scheduler, const RuntimeOptions& rto,
                        const std::string& label) {
    MethodResult r =
        run_method(config, batch, predictor, scheduler, rto, options.cap);
    r.name = label;
    r.speedup_vs_random = out.random_mean_makespan / r.makespan;
    out.methods.push_back(std::move(r));
  };

  // Default with the two frequency-adjustment policies.
  {
    sched::DefaultScheduler default_sched;
    add_method(default_sched, rt, "Default_G");
    if (options.include_cpu_biased_default) {
      RuntimeOptions rt_cpu = rt;
      rt_cpu.policy = sim::GovernorPolicy::kCpuBiased;
      sched::DefaultScheduler default_cpu;
      add_method(default_cpu, rt_cpu, "Default_C");
    }
  }

  // HCS and HCS+.
  {
    sched::HcsScheduler hcs;
    add_method(hcs, rt, "HCS");
    sched::HcsPlusScheduler hcs_plus;
    add_method(hcs_plus, rt, "HCS+");
  }

  // Lower bound (model-predicted; not executable).
  {
    sched::SchedulerContext ctx;
    ctx.batch = &batch;
    ctx.predictor = &predictor;
    ctx.cap = options.cap;
    const sched::LowerBoundResult lb = sched::compute_lower_bound(ctx);
    out.lower_bound = lb.t_low_tight;
    out.bound_speedup_vs_random =
        out.lower_bound > 0.0 ? out.random_mean_makespan / out.lower_bound : 0.0;
  }

  return out;
}

}  // namespace corun::runtime
