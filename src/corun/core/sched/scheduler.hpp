// Scheduler interface and the shared planning context.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/sched/schedule.hpp"
#include "corun/sim/governor.hpp"
#include "corun/workload/batch.hpp"

namespace corun::sched {

/// Everything a scheduling algorithm may consult while planning. The
/// predictor is the only window onto performance/power — schedulers never
/// see the simulator's ground truth, exactly as the paper's runtime never
/// sees the future.
struct SchedulerContext {
  const workload::Batch* batch = nullptr;
  const model::CoRunPredictor* predictor = nullptr;
  std::optional<Watts> cap;
  sim::GovernorPolicy policy = sim::GovernorPolicy::kGpuBiased;

  /// Provenance of `incumbent_hint`, for the search's telemetry only — it
  /// never changes how the hint is used (re-encoded, then pruned against).
  enum class HintKind {
    kPlanCache,  ///< donated by a plan-cache near hit
    kRepair,     ///< repaired previous plan from the dynamic runtime
  };

  /// Warm-start donor for bounded searches: a known-valid schedule for
  /// this very job set (the plan cache donates these from near hits; the
  /// dynamic runtime donates locally repaired previous plans). A
  /// search must first re-encode the donor into its *own* solution space
  /// before pruning against it — the donor's raw makespan may lie below
  /// every solution the search can reach (e.g. a refined order, or levels
  /// picked under a different cap), and seeding a strict pruning bound
  /// with such a value silently discards the search's real optimum. Used
  /// correctly the hint only accelerates the search; it is never a result
  /// and must never change the returned schedule.
  std::optional<Schedule> incumbent_hint;
  HintKind hint_kind = HintKind::kPlanCache;

  [[nodiscard]] const workload::Batch& jobs() const;
  [[nodiscard]] const model::CoRunPredictor& model() const;
  [[nodiscard]] std::string job_name(std::size_t i) const;
  [[nodiscard]] std::vector<std::string> job_names() const;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Computes a schedule for the context's batch. Implementations must
  /// return a schedule that passes Schedule::validate.
  [[nodiscard]] virtual Schedule plan(const SchedulerContext& ctx) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace corun::sched
