#include "corun/core/sched/lower_bound.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "corun/common/check.hpp"

namespace corun::sched {

namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

/// One-sided rounding guard for the closed-form bound terms: a few ulps of
/// accumulated rounding must never push an admissible bound above a leaf it
/// ties, so the strong terms are shrunk by 1e-12 relative before entering
/// the strict `bound > incumbent` pruning test. The legacy load bound is
/// left untouched (bit-compatibility with the historical search).
constexpr double kRoundingGuard = 1.0 - 1e-12;

}  // namespace

DeviceOccupancy device_occupancy(const SchedulerContext& ctx, std::size_t i,
                                 sim::DeviceKind p, bool include_floor_pair) {
  const model::CoRunPredictor& m = ctx.model();
  const std::size_t n = ctx.jobs().size();
  const std::string job = ctx.job_name(i);

  DeviceOccupancy out{kInf, kInf};

  // (b) twice the best standalone time on p under the cap.
  const auto solo_level = m.best_solo_level(job, p, ctx.cap);
  Seconds solo_occupancy = kInf;
  if (solo_level) {
    const Seconds t = m.standalone_time(job, p, *solo_level);
    solo_occupancy = 2.0 * t;
    out.best_time = std::min(out.best_time, t);
  }

  // (a) best co-run time with the least interfering partner, over all
  // partners and frequency pairs. The candidate set is the cap-feasible
  // pairs, plus — when `include_floor_pair` — the floor pair, which the
  // reactive governor falls back to (tolerating the violation) when no
  // feasible pair exists, so leaves may legally run at it. The per-partner
  // scan goes through the predictor's memoized min (min over doubles is
  // order-independent, so the value matches the inline scan bit-for-bit);
  // re-plans over overlapping job sets then rebuild bounds from cache hits.
  Seconds corun_occupancy = kInf;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const Seconds t =
        m.min_corun_time(job, p, ctx.job_name(j), ctx.cap, include_floor_pair);
    corun_occupancy = std::min(corun_occupancy, t);
    out.best_time = std::min(out.best_time, t);
  }

  out.occupancy = std::min(corun_occupancy, solo_occupancy);
  return out;
}

LowerBoundResult compute_lower_bound(const SchedulerContext& ctx) {
  const std::size_t n = ctx.jobs().size();

  LowerBoundResult out;
  Seconds sum = 0.0;
  Seconds longest_best = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    Seconds best_occupancy = kInf;
    Seconds best_time = kInf;
    for (const sim::DeviceKind p :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      const DeviceOccupancy d =
          device_occupancy(ctx, i, p, /*include_floor_pair=*/false);
      best_occupancy = std::min(best_occupancy, d.occupancy);
      best_time = std::min(best_time, d.best_time);
    }

    CORUN_CHECK_MSG(best_occupancy < kInf,
                    "job " + ctx.job_name(i) + " has no cap-feasible execution");
    sum += best_occupancy;
    longest_best = std::max(longest_best, best_time);
  }

  out.t_low = sum / 2.0;
  out.t_low_tight = std::max(out.t_low, longest_best);
  return out;
}

IncrementalBound::IncrementalBound(const SchedulerContext& ctx,
                                   std::vector<Seconds> t_cpu,
                                   std::vector<Seconds> t_gpu)
    : n_(t_cpu.size()), t_cpu_(std::move(t_cpu)), t_gpu_(std::move(t_gpu)) {
  CORUN_CHECK(t_gpu_.size() == n_ && ctx.jobs().size() == n_);

  // Device occupancies. A cap-infeasible device stays at infinity: the
  // search's leaf space never places the job there, so it must not lower
  // the job's min-over-device occupancy.
  occ_cpu_.assign(n_, kInf);
  occ_gpu_.assign(n_, kInf);
  occ_min_.assign(n_, kInf);
  for (std::size_t i = 0; i < n_; ++i) {
    if (t_cpu_[i] < 1e18) {
      occ_cpu_[i] = device_occupancy(ctx, i, sim::DeviceKind::kCpu,
                                     /*include_floor_pair=*/true)
                        .occupancy;
    }
    if (t_gpu_[i] < 1e18) {
      occ_gpu_[i] = device_occupancy(ctx, i, sim::DeviceKind::kGpu,
                                     /*include_floor_pair=*/true)
                        .occupancy;
    }
    occ_min_[i] = std::min(occ_cpu_[i], occ_gpu_[i]);
    CORUN_CHECK_MSG(occ_min_[i] < kInf,
                    "job " + ctx.job_name(i) + " infeasible on both devices");
  }

  // Per-depth suffix structures for the fractional relaxation. n is capped
  // by the search's job limit, so the O(n^2 log n) build is noise next to
  // the occupancy scan above.
  depths_.resize(n_ + 1);
  for (std::size_t d = 0; d <= n_; ++d) {
    DepthInfo& info = depths_[d];
    struct Flex {
      double ratio;
      std::size_t index;
      Seconds a, b;
    };
    std::vector<Flex> flex;
    for (std::size_t j = d; j < n_; ++j) {
      const bool cpu_ok = t_cpu_[j] < 1e18;
      const bool gpu_ok = t_gpu_[j] < 1e18;
      if (cpu_ok && gpu_ok) {
        flex.push_back(
            {t_cpu_[j] / (t_cpu_[j] + t_gpu_[j]), j, t_cpu_[j], t_gpu_[j]});
      } else if (cpu_ok) {
        info.forced_cpu += t_cpu_[j];
      } else {
        info.forced_gpu += t_gpu_[j];
      }
    }
    // Ascending CPU share: the greedy fractional fill takes the cheapest
    // CPU seconds per unit of combined work first. Index tie-break keeps
    // the order (and therefore the bound's exact value) deterministic.
    std::sort(flex.begin(), flex.end(), [](const Flex& x, const Flex& y) {
      return x.ratio != y.ratio ? x.ratio < y.ratio : x.index < y.index;
    });
    Seconds run_a = 0.0;
    Seconds run_ab = 0.0;
    for (const Flex& f : flex) {
      info.a.push_back(f.a);
      info.ab.push_back(f.a + f.b);
      run_a += f.a;
      run_ab += f.a + f.b;
      info.cum_a.push_back(run_a);
      info.cum_ab.push_back(run_ab);
    }
  }
}

IncrementalBound::Cursor::Cursor(const IncrementalBound& model)
    : model_(&model) {
  path_.assign(model.n_, sim::DeviceKind::kCpu);
  undo_.reserve(model.n_);
  for (std::size_t i = 0; i < model.n_; ++i) {
    remaining_ += std::min(model.t_cpu_[i], model.t_gpu_[i]);
  }
  for (std::size_t i = 0; i < model.n_; ++i) occ_sum_ += model.occ_min_[i];
}

void IncrementalBound::Cursor::push(std::size_t job, sim::DeviceKind device) {
  CORUN_CHECK_MSG(job == depth_, "placements must follow index order");
  undo_.push_back({cpu_load_, gpu_load_, remaining_, occ_sum_});
  if (device == sim::DeviceKind::kCpu) {
    cpu_load_ += model_->t_cpu_[job];
    occ_sum_ += model_->occ_cpu_[job] - model_->occ_min_[job];
  } else {
    gpu_load_ += model_->t_gpu_[job];
    occ_sum_ += model_->occ_gpu_[job] - model_->occ_min_[job];
  }
  remaining_ -= std::min(model_->t_cpu_[job], model_->t_gpu_[job]);
  path_[job] = device;
  ++depth_;
}

void IncrementalBound::Cursor::pop() {
  CORUN_CHECK_MSG(depth_ > 0, "pop on an empty search path");
  const Frame f = undo_.back();
  undo_.pop_back();
  cpu_load_ = f.cpu_load;
  gpu_load_ = f.gpu_load;
  remaining_ = f.remaining;
  occ_sum_ = f.occ_sum;
  --depth_;
}

Seconds IncrementalBound::Cursor::load_bound() const {
  return std::max(
      {cpu_load_, gpu_load_, (cpu_load_ + gpu_load_ + remaining_) / 2.0});
}

Seconds IncrementalBound::Cursor::bound() const {
  const std::size_t n = model_->n_;
  const std::size_t suffix = n - depth_;

  // Enumerated-completion term: with few unplaced jobs the integral
  // completions can be walked outright, closing the fractional gap and
  // coupling the load and occupancy relaxations per completion. Each
  // candidate is an admissible per-leaf bound (optimistic device sums,
  // device-specific occupancies), so the minimum over every reachable
  // completion is an admissible node bound. O(2^k * k) arithmetic on
  // doubles — no predictor calls — and k is small exactly where the
  // search spends its nodes (at and below the fan-out frontier).
  constexpr std::size_t kEnumLimit = 6;
  Seconds enumerated = kInf;
  if (suffix <= kEnumLimit) {
    const std::uint32_t combos = 1u << suffix;
    for (std::uint32_t mask = 0; mask < combos; ++mask) {
      Seconds c = cpu_load_;
      Seconds g = gpu_load_;
      Seconds occ = occ_sum_;
      bool feasible = true;
      for (std::size_t j = 0; j < suffix; ++j) {
        const std::size_t job = depth_ + j;
        if ((mask >> j) & 1u) {
          if (model_->t_gpu_[job] >= 1e18) {
            feasible = false;
            break;
          }
          g += model_->t_gpu_[job];
          occ += model_->occ_gpu_[job] - model_->occ_min_[job];
        } else {
          if (model_->t_cpu_[job] >= 1e18) {
            feasible = false;
            break;
          }
          c += model_->t_cpu_[job];
          occ += model_->occ_cpu_[job] - model_->occ_min_[job];
        }
      }
      if (!feasible) continue;
      enumerated = std::min(enumerated, std::max({c, g, occ * 0.5}));
    }
  }

  const DepthInfo& info = model_->depths_[depth_];
  const Seconds a_base = cpu_load_ + info.forced_cpu;
  const Seconds b_base = gpu_load_ + info.forced_gpu;

  Seconds frac;
  if (info.a.empty()) {
    frac = std::max(a_base, b_base);
  } else {
    const Seconds s_a = info.cum_a.back();
    const Seconds s_ab = info.cum_ab.back();
    const Seconds s_b = s_ab - s_a;
    if (a_base >= b_base + s_b) {
      // Even all-flex-on-GPU leaves the CPU later; its load is the floor.
      frac = a_base;
    } else if (b_base >= a_base + s_a) {
      frac = b_base;
    } else {
      // Interior optimum: both devices finish together. The equalizing
      // constraint sum x_j (a_j + b_j) = C is filled greedily in ratio
      // order; the crossing item runs fractionally.
      const Seconds c = b_base + s_b - a_base;
      std::size_t k = static_cast<std::size_t>(
          std::lower_bound(info.cum_ab.begin(), info.cum_ab.end(), c) -
          info.cum_ab.begin());
      if (k >= info.a.size()) k = info.a.size() - 1;
      const Seconds prev_a = k == 0 ? 0.0 : info.cum_a[k - 1];
      const Seconds prev_ab = k == 0 ? 0.0 : info.cum_ab[k - 1];
      const double x =
          std::clamp((c - prev_ab) / info.ab[k], 0.0, 1.0);
      frac = a_base + prev_a + x * info.a[k];
    }
  }

  Seconds strong = std::max({load_bound(), frac * kRoundingGuard,
                             occ_sum_ * 0.5 * kRoundingGuard});
  if (enumerated < kInf) {
    strong = std::max(strong, enumerated * kRoundingGuard);
  }
  return strong;
}

}  // namespace corun::sched
