#include "corun/core/sched/lower_bound.hpp"

#include <algorithm>
#include <limits>

#include "corun/common/check.hpp"

namespace corun::sched {

LowerBoundResult compute_lower_bound(const SchedulerContext& ctx) {
  const model::CoRunPredictor& m = ctx.model();
  const std::size_t n = ctx.jobs().size();
  const sim::MachineConfig& machine = m.machine();

  LowerBoundResult out;
  Seconds sum = 0.0;
  Seconds longest_best = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::string job = ctx.job_name(i);
    Seconds best_occupancy = std::numeric_limits<Seconds>::infinity();
    Seconds best_time = std::numeric_limits<Seconds>::infinity();

    for (const sim::DeviceKind p :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      // (b) twice the best standalone time on p under the cap.
      const auto solo_level = m.best_solo_level(job, p, ctx.cap);
      Seconds solo_occupancy = std::numeric_limits<Seconds>::infinity();
      if (solo_level) {
        const Seconds t = m.standalone_time(job, p, *solo_level);
        solo_occupancy = 2.0 * t;
        best_time = std::min(best_time, t);
      }

      // (a) best cap-feasible co-run time with the least interfering
      // partner, over all partners and frequency pairs.
      Seconds corun_occupancy = std::numeric_limits<Seconds>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::string partner = ctx.job_name(j);
        const std::string& cpu_job = p == sim::DeviceKind::kCpu ? job : partner;
        const std::string& gpu_job = p == sim::DeviceKind::kCpu ? partner : job;
        for (sim::FreqLevel fc = 0; fc <= machine.cpu_ladder.max_level(); ++fc) {
          for (sim::FreqLevel fg = 0; fg <= machine.gpu_ladder.max_level();
               ++fg) {
            if (!m.corun_feasible(cpu_job, fc, gpu_job, fg, ctx.cap)) continue;
            const model::PairPrediction pred =
                m.predict(cpu_job, fc, gpu_job, fg);
            const Seconds t =
                p == sim::DeviceKind::kCpu ? pred.cpu_time : pred.gpu_time;
            corun_occupancy = std::min(corun_occupancy, t);
            best_time = std::min(best_time, t);
          }
        }
      }

      best_occupancy = std::min(
          best_occupancy, std::min(corun_occupancy, solo_occupancy));
    }

    CORUN_CHECK_MSG(best_occupancy < std::numeric_limits<Seconds>::infinity(),
                    "job " + job + " has no cap-feasible execution");
    sum += best_occupancy;
    longest_best = std::max(longest_best, best_time);
  }

  out.t_low = sum / 2.0;
  out.t_low_tight = std::max(out.t_low, longest_best);
  return out;
}

}  // namespace corun::sched
