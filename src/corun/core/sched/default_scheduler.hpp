// Default baseline (Sec. VI-A): the "leave it to the OS" scheduler.
//
// Programs are ranked by the ratio of standalone CPU time to GPU time at
// maximum frequency; a prefix of the ranking (the most GPU-leaning jobs)
// goes to the GPU and the rest to the CPU, with the split chosen to
// minimize the longer partition's total time. The GPU partition runs
// sequentially (one kernel at a time); the CPU partition is launched all at
// once and time-shared by the OS scheduler — the context-switch and
// locality costs of that choice are why Default collapses below Random in
// the 16-program study (Fig. 11).
#pragma once

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

class DefaultScheduler : public Scheduler {
 public:
  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "Default"; }
};

}  // namespace corun::sched
