#include "corun/core/sched/branch_and_bound.hpp"

#include <algorithm>
#include <limits>

#include "corun/common/check.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/refiner.hpp"

namespace corun::sched {
namespace {

struct SearchState {
  std::vector<std::size_t> cpu;
  std::vector<std::size_t> gpu;
  std::vector<bool> placed;
  Seconds cpu_load = 0.0;  ///< optimistic time already committed to the CPU
  Seconds gpu_load = 0.0;
  Seconds remaining = 0.0; ///< sum of unplaced jobs' best-device times
};

}  // namespace

BranchAndBoundScheduler::BranchAndBoundScheduler(BranchAndBoundOptions options)
    : options_(options) {}

Schedule BranchAndBoundScheduler::plan(const SchedulerContext& ctx) {
  const std::size_t n = ctx.jobs().size();
  CORUN_CHECK_MSG(n <= options_.max_jobs,
                  "branch-and-bound limited to " +
                      std::to_string(options_.max_jobs) + " jobs");
  nodes_ = 0;
  pruned_ = 0;
  leaves_ = 0;
  budget_exhausted_ = false;

  const model::CoRunPredictor& m = ctx.model();
  const MakespanEvaluator evaluator(ctx);

  // Optimistic per-device times: best cap-feasible level, no degradation.
  std::vector<Seconds> t_cpu(n, std::numeric_limits<Seconds>::infinity());
  std::vector<Seconds> t_gpu(n, std::numeric_limits<Seconds>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = ctx.job_name(i);
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kCpu, ctx.cap)) {
      t_cpu[i] = m.standalone_time(name, sim::DeviceKind::kCpu, *l);
    }
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kGpu, ctx.cap)) {
      t_gpu[i] = m.standalone_time(name, sim::DeviceKind::kGpu, *l);
    }
    CORUN_CHECK_MSG(t_cpu[i] < 1e18 || t_gpu[i] < 1e18,
                    "job " + name + " infeasible on both devices");
  }

  // Incumbent: the heuristic solution (also what we return if the budget
  // runs out before anything better turns up).
  HcsPlusScheduler seed;
  Schedule best_schedule = seed.plan(ctx);
  Seconds best = evaluator.makespan(best_schedule);

  auto leaf_schedule = [&](const SearchState& s) {
    Schedule schedule;
    schedule.model_dvfs = true;
    for (const std::size_t job : s.cpu) {
      schedule.cpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kCpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    for (const std::size_t job : s.gpu) {
      schedule.gpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kGpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    return schedule;
  };

  // Depth-first with the admissible load bound.
  auto bound = [&](const SearchState& s) {
    return std::max({s.cpu_load, s.gpu_load,
                     (s.cpu_load + s.gpu_load + s.remaining) / 2.0});
  };

  SearchState root;
  root.placed.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    root.remaining += std::min(t_cpu[i], t_gpu[i]);
  }

  // Iterative DFS with an explicit stack of (state, next branch index).
  std::vector<SearchState> stack{root};
  while (!stack.empty()) {
    if (nodes_ >= options_.node_budget) {
      budget_exhausted_ = true;
      break;
    }
    const SearchState s = std::move(stack.back());
    stack.pop_back();
    ++nodes_;

    if (s.cpu.size() + s.gpu.size() == n) {
      ++leaves_;
      const Schedule candidate = leaf_schedule(s);
      const Seconds makespan = evaluator.makespan(candidate);
      if (makespan < best) {
        best = makespan;
        best_schedule = candidate;
      }
      continue;
    }
    if (bound(s) >= best) {
      ++pruned_;
      continue;
    }

    // Branch: place each unplaced job on each feasible device. Pushing the
    // CPU branch last makes the DFS explore GPU-first placements first,
    // which tends to find good incumbents early for this GPU-leaning suite.
    for (std::size_t job = 0; job < n; ++job) {
      if (s.placed[job]) continue;
      if (t_cpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.cpu.push_back(job);
        next.cpu_load += t_cpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        stack.push_back(std::move(next));
      }
      if (t_gpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.gpu.push_back(job);
        next.gpu_load += t_gpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        stack.push_back(std::move(next));
      }
      // Branch on the first unplaced job only: this enumerates every
      // *placement* (2^n assignments) exactly once, with per-device order
      // fixed to index order. Order is then polished by local refinement
      // below — placement dominates the makespan, order is a local matter.
      break;
    }
  }

  // Polish the winning placement's per-device order.
  const Refiner refiner;
  Schedule refined = refiner.refine(ctx, best_schedule);
  if (evaluator.makespan(refined) < best) {
    best_schedule = std::move(refined);
  }

  best_schedule.validate(n);
  return best_schedule;
}

}  // namespace corun::sched
