#include "corun/core/sched/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <numeric>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/lower_bound.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/plan_cache/signature.hpp"
#include "corun/core/sched/refiner.hpp"

namespace corun::sched {
namespace {

struct SearchState {
  std::vector<std::size_t> cpu;
  std::vector<std::size_t> gpu;
  std::vector<bool> placed;
  Seconds cpu_load = 0.0;  ///< optimistic time already committed to the CPU
  Seconds gpu_load = 0.0;
  Seconds remaining = 0.0; ///< sum of unplaced jobs' best-device times
};

/// Lock-free monotone minimum for the shared incumbent bound. Returns true
/// when `value` strictly improved the target (an incumbent update).
bool atomic_min(std::atomic<double>& target, double value) {
  double observed = target.load();
  while (value < observed) {
    if (target.compare_exchange_weak(observed, value)) return true;
  }
  return false;
}

}  // namespace

BranchAndBoundScheduler::BranchAndBoundScheduler(BranchAndBoundOptions options)
    : options_(options) {}

Schedule BranchAndBoundScheduler::plan(const SchedulerContext& ctx) {
  // Analytic-eval opt-out: re-plan against a legacy copy-view of the
  // predictor (same DB/grid/machine, tables off). The tables are
  // byte-identical by construction, so this can only ever reproduce the
  // same schedule — it exists to let tests and the fidelity bench prove
  // that claim.
  if (!options_.analytic_eval && ctx.predictor != nullptr &&
      ctx.predictor->options().analytic_tables) {
    const model::CoRunPredictor legacy(
        *ctx.predictor, model::PredictorOptions{.analytic_tables = false});
    SchedulerContext legacy_ctx = ctx;
    legacy_ctx.predictor = &legacy;
    return plan(legacy_ctx);
  }

  CORUN_TRACE_SPAN("sched", "bnb.plan");
  const std::size_t n = ctx.jobs().size();
  CORUN_CHECK_MSG(n <= options_.max_jobs,
                  "branch-and-bound limited to " +
                      std::to_string(options_.max_jobs) + " jobs");
  const model::CoRunPredictor& m = ctx.model();
  const MakespanEvaluator evaluator(ctx);

  // Optimistic per-device times: best cap-feasible level, no degradation.
  std::vector<Seconds> t_cpu(n, std::numeric_limits<Seconds>::infinity());
  std::vector<Seconds> t_gpu(n, std::numeric_limits<Seconds>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = ctx.job_name(i);
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kCpu, ctx.cap)) {
      t_cpu[i] = m.standalone_time(name, sim::DeviceKind::kCpu, *l);
    }
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kGpu, ctx.cap)) {
      t_gpu[i] = m.standalone_time(name, sim::DeviceKind::kGpu, *l);
    }
    CORUN_CHECK_MSG(t_cpu[i] < 1e18 || t_gpu[i] < 1e18,
                    "job " + name + " infeasible on both devices");
  }

  // The incremental bound model shared (read-only) by all subtree tasks.
  // Built even when `strong_bound` is off: the cursor also maintains the
  // historical load accounting, so both modes walk the same machinery and
  // differ only in which bound function the pruning test calls.
  const IncrementalBound bound_model(ctx, t_cpu, t_gpu);

  // Job-class identities for equivalence dominance: equal profile digests
  // mean the predictor — and with it the makespan evaluator — cannot
  // distinguish the two jobs. Interchangeability is scoped to *maximal
  // same-class index runs* (consecutive jobs with equal digests): the
  // evaluator consumes each device's jobs in index order, so swapping two
  // same-class jobs with a different-class job between them would reorder
  // a device's row sequence and can change the makespan. Within a run
  // every affected row is identical, so permuting devices across run
  // members leaves both row sequences — and therefore the evaluated
  // makespan — bit-identical.
  std::vector<std::uint32_t> run_id(n, 0);
  std::size_t num_runs = n;
  bool has_clones = false;
  if (options_.dominance && n > 0) {
    std::vector<std::uint64_t> digest(n);
    for (std::size_t i = 0; i < n; ++i) {
      digest[i] = job_profile_digest(m.db(), ctx.job_name(i));
    }
    std::uint32_t next = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (digest[i] != digest[i - 1]) {
        ++next;
      } else {
        has_clones = true;
      }
      run_id[i] = next;
    }
    num_runs = next + 1;
  }

  // Incumbent: the heuristic solution (also what we return if the budget
  // runs out before anything better turns up).
  HcsPlusScheduler seed;
  Schedule best_schedule = seed.plan(ctx);
  Seconds seed_makespan = evaluator.makespan(best_schedule);

  auto leaf_schedule = [&](const SearchState& s) {
    Schedule schedule;
    schedule.model_dvfs = true;
    for (const std::size_t job : s.cpu) {
      schedule.cpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kCpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    for (const std::size_t job : s.gpu) {
      schedule.gpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kGpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    return schedule;
  };

  // Leaf schedule straight off a full cursor path. Placements were pushed
  // in index order, so appending per device in job-index order produces
  // exactly the sequences the SearchState form builds.
  auto cursor_leaf_schedule = [&](const IncrementalBound::Cursor& cur) {
    Schedule schedule;
    schedule.model_dvfs = true;
    for (std::size_t job = 0; job < n; ++job) {
      const sim::DeviceKind d = cur.device_at(job);
      auto& sequence =
          d == sim::DeviceKind::kCpu ? schedule.cpu : schedule.gpu;
      sequence.push_back(
          {job, m.best_solo_level(ctx.job_name(job), d, ctx.cap).value_or(0)});
    }
    return schedule;
  };

  // Admissible load bound on any completion of a partial placement — the
  // historical bound, used verbatim during the breadth-first fan-out.
  auto bound = [&](const SearchState& s) {
    return std::max({s.cpu_load, s.gpu_load,
                     (s.cpu_load + s.gpu_load + s.remaining) / 2.0});
  };

  // Children of a state: the first unplaced job on each feasible device.
  // Branching on the first unplaced job only enumerates every *placement*
  // (2^n assignments) exactly once, with per-device order fixed to index
  // order; order is polished by local refinement at the end — placement
  // dominates the makespan, order is a local matter. GPU-first child order
  // tends to find good incumbents early for this GPU-leaning suite.
  auto expand = [&](const SearchState& s, auto&& emit) {
    for (std::size_t job = 0; job < n; ++job) {
      if (s.placed[job]) continue;
      if (t_cpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.cpu.push_back(job);
        next.cpu_load += t_cpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        emit(std::move(next));
      }
      if (t_gpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.gpu.push_back(job);
        next.gpu_load += t_gpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        emit(std::move(next));
      }
      break;
    }
  };

  SearchState root;
  root.placed.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    root.remaining += std::min(t_cpu[i], t_gpu[i]);
  }

  // A warm hint (plan-cache near hit, or a repaired previous plan from the
  // dynamic runtime) donates a *schedule* for this job set. Its raw
  // makespan is not a sound pruning bound: the donor was order-refined
  // and/or levelled under a different cap, so it can lie strictly below
  // every leaf this search enumerates (index-order sequences at the
  // current cap's best solo levels) — seeding the strict `bound >
  // incumbent` test with it would cut the path to the very leaf a cold
  // run returns and silently fall back to the HCS+ seed. So the donor is
  // re-encoded into leaf space first: keep only its *placement* (which
  // device each job runs on), rebuild index order and current-cap levels,
  // and evaluate that. The re-encoding is itself a reachable leaf, so its
  // makespan upper-bounds no reachable leaf's minimum away, and strict
  // pruning keeps every minimum-makespan leaf alive: the reduction below
  // lands on the same first-found minimum as a cold run. Donors that do
  // not map into leaf space (solo/shared/batch-launch forms, or a device
  // the current cap makes infeasible) are dropped, as is the whole hint
  // whenever the node budget could bind — a truncated search keeps leaves
  // by visit order, which warm pruning would perturb. The full tree has
  // at most 2^(n+1)-1 nodes, so the default budget never binds for
  // default-sized batches and the hint stays active on the hot path.
  Seconds hint = std::numeric_limits<Seconds>::infinity();
  warm_started_ = false;
  repair_hint_used_ = false;
  repair_fallback_ = false;
  const bool budget_cannot_bind =
      n + 1 < 8 * sizeof(std::size_t) &&
      options_.node_budget >= (std::size_t{1} << (n + 1)) - 1;
  if (ctx.incumbent_hint && budget_cannot_bind) {
    const Schedule& donor = *ctx.incumbent_hint;
    const bool plain_corun = !donor.cpu_batch_launch && !donor.shared_queue &&
                             donor.solo.empty() && donor.shared.empty() &&
                             donor.cpu.size() + donor.gpu.size() == n;
    if (plain_corun) {
      SearchState encoded = root;
      bool feasible = true;
      auto place = [&](const std::vector<ScheduledJob>& jobs,
                       const std::vector<Seconds>& t,
                       std::vector<std::size_t>& device) {
        for (const ScheduledJob& entry : jobs) {
          if (entry.job >= n || encoded.placed[entry.job] ||
              t[entry.job] >= 1e18) {
            feasible = false;
            return;
          }
          encoded.placed[entry.job] = true;
          device.push_back(entry.job);
        }
        std::sort(device.begin(), device.end());
      };
      place(donor.cpu, t_cpu, encoded.cpu);
      if (feasible) place(donor.gpu, t_gpu, encoded.gpu);
      if (feasible) {
        hint = evaluator.makespan(leaf_schedule(encoded));
        warm_started_ = true;
        CORUN_TRACE_INSTANT("sched", "bnb.warm_start");
        if (ctx.hint_kind == SchedulerContext::HintKind::kRepair) {
          repair_hint_used_ = true;
          CORUN_TRACE_COUNTER("bnb.repairs", 1);
        }
      }
    }
  }

  // Shared search telemetry. The incumbent *value* is shared across
  // subtree tasks so every task prunes against the best schedule found
  // anywhere; incumbent *schedules* stay task-local and are reduced in
  // frontier order below, which keeps the returned plan deterministic (the
  // strict `bound > incumbent` pruning test can never cut a subtree's path
  // to its own minimum when that minimum ties the global one).
  std::atomic<double> incumbent{seed_makespan};
  std::atomic<std::size_t> nodes{0};
  std::atomic<std::size_t> bound_prunes{0};
  std::atomic<std::size_t> dominance_prunes{0};
  std::atomic<std::size_t> leaves{0};
  std::atomic<std::size_t> incumbent_updates{0};
  std::atomic<bool> budget_exhausted{false};

  // Breadth-first root expansion into a frontier of independent subtrees —
  // the top-level fan-out. The target is a constant (not the worker count)
  // so the frontier — and therefore tie-breaking between equal-makespan
  // leaves — is identical for every --jobs setting. The fan-out runs the
  // historical bound with neither strong pruning rule: the frontier
  // decomposition fixes the deterministic reduction order across subtrees,
  // and the BFS queue visits the CPU child first — the opposite of the
  // depth-first order the dominance canonical form is defined against — so
  // both rules are confined to the subtree searches, where their
  // first-found-twin argument actually holds.
  constexpr std::size_t fanout_target = 32;
  std::deque<SearchState> frontier{root};
  std::vector<std::pair<Seconds, Schedule>> early;  // leaves met while fanning
  while (!frontier.empty() && frontier.size() < fanout_target) {
    if (nodes.load() >= options_.node_budget) {
      budget_exhausted.store(true);
      break;
    }
    const SearchState s = std::move(frontier.front());
    frontier.pop_front();
    ++nodes;
    if (s.cpu.size() + s.gpu.size() == n) {
      ++leaves;
      Schedule candidate = leaf_schedule(s);
      const Seconds makespan = evaluator.makespan(candidate);
      early.emplace_back(makespan, std::move(candidate));
      if (atomic_min(incumbent, makespan)) ++incumbent_updates;
      continue;
    }
    if (bound(s) > incumbent.load()) {
      ++bound_prunes;
      continue;
    }
    expand(s, [&](SearchState next) { frontier.push_back(std::move(next)); });
  }

  // The warm hint joins only now, after the fan-out: the frontier
  // decomposition above — and with it the deterministic reduction order
  // that breaks ties between equal-makespan leaves — is built with the
  // cold incumbent, so it is identical whether or not a hint exists.
  // Tightening the shared bound from here on can only skip subtrees whose
  // every leaf is strictly worse than the hint's leaf-space makespan.
  if (warm_started_) atomic_min(incumbent, hint);

  // Depth-first search of one subtree over an incremental path cursor;
  // returns the subtree's best leaf. The recursion visits the GPU child
  // first, then the CPU child — exactly the order the historical explicit
  // stack (CPU pushed first, LIFO) visited them — so with both pruning
  // toggles off the node/leaf sequence is bit-identical to the old search.
  // A node is counted when entered, after the budget check, matching the
  // old check-before-pop accounting; a false return aborts the subtree on
  // budget exhaustion (the local best found so far still participates in
  // the reduction, like the old loop break).
  // Replay a fan-out prefix into a cursor, in index order — the same order
  // the BFS accumulated the loads, so the arithmetic (and with it every
  // bound value derived from it) is bit-identical to the SearchState chain.
  auto replay_prefix = [&](const SearchState& subtree_root,
                           IncrementalBound::Cursor& cur) {
    const std::size_t entry_depth =
        subtree_root.cpu.size() + subtree_root.gpu.size();
    std::vector<sim::DeviceKind> prefix(entry_depth, sim::DeviceKind::kCpu);
    for (const std::size_t job : subtree_root.gpu) {
      prefix[job] = sim::DeviceKind::kGpu;
    }
    for (std::size_t job = 0; job < entry_depth; ++job) {
      cur.push(job, prefix[job]);
    }
    return entry_depth;
  };

  auto search_subtree = [&](const SearchState& subtree_root) {
    std::pair<Seconds, Schedule> local{
        std::numeric_limits<Seconds>::infinity(), Schedule{}};
    IncrementalBound::Cursor cur = bound_model.cursor();
    const std::size_t entry_depth = replay_prefix(subtree_root, cur);

    // Root gate: a subtree whose root bound already exceeds the incumbent
    // contains only strictly worse leaves — skip it without entering (no
    // node is visited; the historical mode keeps its pop-then-check
    // accounting below).
    if (options_.strong_bound && cur.bound() > incumbent.load()) {
      ++bound_prunes;
      return local;
    }

    // Per-run count of jobs this subtree has placed on the CPU, for the
    // equivalence dominance test. Counting starts at the subtree entry:
    // prefix placements are shared by every subtree and are not swappable
    // within one (cross-subtree equivalence is folded at the frontier
    // instead, see below).
    std::vector<std::uint32_t> cpu_in_run(num_runs, 0);

    auto visit = [&](auto&& self) -> bool {
      if (nodes.load() >= options_.node_budget) {
        budget_exhausted.store(true);
        return false;
      }
      ++nodes;
      const std::size_t depth = cur.depth();
      if (depth == n) {
        ++leaves;
        Schedule candidate = cursor_leaf_schedule(cur);
        const Seconds makespan = evaluator.makespan(candidate);
        if (makespan < local.first) {
          local = {makespan, std::move(candidate)};
          if (atomic_min(incumbent, makespan)) ++incumbent_updates;
        }
        return true;
      }
      const Seconds node_bound =
          options_.strong_bound ? cur.bound() : cur.load_bound();
      if (node_bound > incumbent.load()) {
        ++bound_prunes;
        return true;
      }
      const std::size_t job = depth;  // branch on the first unplaced job
      if (t_gpu[job] < 1e18) {
        // Equivalence dominance: when an earlier member of this job's
        // same-class run already sits on the CPU (placed within this
        // subtree), placing this job on the GPU builds a device-swap twin
        // of a placement already explored (that earlier member on GPU,
        // this job on CPU): the canonical member of the orbit — all GPU
        // placements at the earliest run indices — is lexicographically
        // first under the GPU-first child order, so it is visited before
        // every twin it covers. Equal digests mean identical profile
        // rows, hence identical feasible devices, so the canonical twin
        // always exists in leaf space (t_cpu[job] stays as a guard). The
        // skipped subtree is never entered, so it leaves no trace in the
        // node count — only in dominance_prunes.
        const bool dominated = options_.dominance &&
                               cpu_in_run[run_id[job]] > 0 &&
                               t_cpu[job] < 1e18;
        if (dominated) {
          ++dominance_prunes;
        } else {
          cur.push(job, sim::DeviceKind::kGpu);
          const bool keep_going = self(self);
          cur.pop();
          if (!keep_going) return false;
        }
      }
      if (t_cpu[job] < 1e18) {
        cur.push(job, sim::DeviceKind::kCpu);
        if (options_.dominance) ++cpu_in_run[run_id[job]];
        const bool keep_going = self(self);
        if (options_.dominance) --cpu_in_run[run_id[job]];
        cur.pop();
        if (!keep_going) return false;
      }
      return true;
    };
    visit(visit);
    return local;
  };

  std::vector<std::pair<Seconds, Schedule>> subtree_best(
      frontier.size(),
      {std::numeric_limits<Seconds>::infinity(), Schedule{}});
  std::vector<SearchState> roots(frontier.begin(), frontier.end());

  // Cross-subtree equivalence fold. Two frontier roots at the same depth
  // whose prefixes place, run by run, the same number of jobs on the CPU
  // are within-run device permutations of each other: their leaf sets pair
  // up bijectively with bit-identical makespans (within a run all profile
  // rows are equal, so each device's row sequence is unchanged; suffix
  // placements carry over verbatim). The earlier root's subtree therefore
  // covers the later one's minimum exactly, and under the strict-improve
  // reduction the later subtree can never win — only the first root of
  // each orbit is searched. This is where clone-heavy batches collapse:
  // tied leaves defeat strict bound pruning, but ties are exactly what the
  // canonical form folds away. Never fires when every job is its own run.
  std::vector<bool> covered(roots.size(), false);
  if (options_.dominance && has_clones) {
    std::map<std::vector<std::uint32_t>, std::size_t> orbit_first;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      std::vector<std::uint32_t> key;
      key.reserve(1 + num_runs);
      key.push_back(static_cast<std::uint32_t>(roots[i].cpu.size() +
                                               roots[i].gpu.size()));
      key.resize(1 + num_runs, 0);
      for (const std::size_t job : roots[i].cpu) ++key[1 + run_id[job]];
      const auto [it, inserted] = orbit_first.emplace(std::move(key), i);
      if (!inserted) {
        covered[i] = true;
        ++dominance_prunes;
      }
    }
  }

  // Execution order: most promising subtree (smallest root bound) first,
  // so the incumbent reaches the optimum early and the root gate above
  // skips the rest outright. Only the *execution* order changes — results
  // land in frontier-order slots and the reduction below walks those
  // slots, so tie-breaking between equal-makespan leaves is untouched
  // (the same invariant that makes parallel interleaving safe). The
  // historical mode keeps frontier execution order for bit-identical node
  // accounting.
  std::vector<std::size_t> order;
  order.reserve(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (!covered[i]) order.push_back(i);
  }
  if (options_.strong_bound) {
    std::vector<Seconds> root_bound(roots.size());
    for (const std::size_t i : order) {
      IncrementalBound::Cursor cur = bound_model.cursor();
      replay_prefix(roots[i], cur);
      root_bound[i] = cur.bound();
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return root_bound[a] < root_bound[b];
                     });
  }
  common::TaskPool::shared().parallel_for_index(
      order.size(), [&](std::size_t k) {
        const std::size_t i = order[k];
        subtree_best[i] = search_subtree(roots[i]);
      });

  // Deterministic reduction: the HCS+ seed first, then leaves met during
  // fan-out, then subtrees in frontier order — strict improvement only,
  // matching the serial search's first-found tie-breaking.
  Seconds best = seed_makespan;
  for (auto& group : {std::ref(early), std::ref(subtree_best)}) {
    for (auto& [makespan, schedule] : group.get()) {
      if (makespan < best) {
        best = makespan;
        best_schedule = std::move(schedule);
      }
    }
  }

  // A repair hint "survives" when nothing beat its re-encoded makespan: the
  // repaired plan was already optimal in leaf space. Otherwise the full
  // search was genuinely needed — the fallback the runtime's repair
  // statistics report.
  if (repair_hint_used_ && best < hint) {
    repair_fallback_ = true;
    CORUN_TRACE_COUNTER("bnb.repair_fallbacks", 1);
  }

  nodes_ = nodes.load();
  bound_prunes_ = bound_prunes.load();
  dominance_prunes_ = dominance_prunes.load();
  pruned_ = bound_prunes_ + dominance_prunes_;
  leaves_ = leaves.load();
  incumbent_updates_ = incumbent_updates.load();
  budget_exhausted_ = budget_exhausted.load();
  CORUN_TRACE_COUNTER("bnb.nodes", nodes_);
  CORUN_TRACE_COUNTER("bnb.pruned", pruned_);
  CORUN_TRACE_COUNTER("bnb.bound_prunes", bound_prunes_);
  CORUN_TRACE_COUNTER("bnb.dominance_prunes", dominance_prunes_);
  CORUN_TRACE_COUNTER("bnb.leaves", leaves_);
  CORUN_TRACE_COUNTER("bnb.incumbent_updates", incumbent_updates_);
  if (warm_started_) CORUN_TRACE_COUNTER("bnb.warm_started_nodes", nodes_);
  if (budget_exhausted_) CORUN_TRACE_COUNTER("bnb.budget_exhausted", 1);

  // Polish the winning placement's per-device order.
  const Refiner refiner;
  Schedule refined = refiner.refine(ctx, best_schedule);
  if (evaluator.makespan(refined) < best) {
    best_schedule = std::move(refined);
  }

  best_schedule.validate(n);
  return best_schedule;
}

}  // namespace corun::sched
