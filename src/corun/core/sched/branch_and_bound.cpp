#include "corun/core/sched/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/refiner.hpp"

namespace corun::sched {
namespace {

struct SearchState {
  std::vector<std::size_t> cpu;
  std::vector<std::size_t> gpu;
  std::vector<bool> placed;
  Seconds cpu_load = 0.0;  ///< optimistic time already committed to the CPU
  Seconds gpu_load = 0.0;
  Seconds remaining = 0.0; ///< sum of unplaced jobs' best-device times
};

/// Lock-free monotone minimum for the shared incumbent bound. Returns true
/// when `value` strictly improved the target (an incumbent update).
bool atomic_min(std::atomic<double>& target, double value) {
  double observed = target.load();
  while (value < observed) {
    if (target.compare_exchange_weak(observed, value)) return true;
  }
  return false;
}

}  // namespace

BranchAndBoundScheduler::BranchAndBoundScheduler(BranchAndBoundOptions options)
    : options_(options) {}

Schedule BranchAndBoundScheduler::plan(const SchedulerContext& ctx) {
  CORUN_TRACE_SPAN("sched", "bnb.plan");
  const std::size_t n = ctx.jobs().size();
  CORUN_CHECK_MSG(n <= options_.max_jobs,
                  "branch-and-bound limited to " +
                      std::to_string(options_.max_jobs) + " jobs");
  const model::CoRunPredictor& m = ctx.model();
  const MakespanEvaluator evaluator(ctx);

  // Optimistic per-device times: best cap-feasible level, no degradation.
  std::vector<Seconds> t_cpu(n, std::numeric_limits<Seconds>::infinity());
  std::vector<Seconds> t_gpu(n, std::numeric_limits<Seconds>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = ctx.job_name(i);
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kCpu, ctx.cap)) {
      t_cpu[i] = m.standalone_time(name, sim::DeviceKind::kCpu, *l);
    }
    if (const auto l = m.best_solo_level(name, sim::DeviceKind::kGpu, ctx.cap)) {
      t_gpu[i] = m.standalone_time(name, sim::DeviceKind::kGpu, *l);
    }
    CORUN_CHECK_MSG(t_cpu[i] < 1e18 || t_gpu[i] < 1e18,
                    "job " + name + " infeasible on both devices");
  }

  // Incumbent: the heuristic solution (also what we return if the budget
  // runs out before anything better turns up).
  HcsPlusScheduler seed;
  Schedule best_schedule = seed.plan(ctx);
  Seconds seed_makespan = evaluator.makespan(best_schedule);

  auto leaf_schedule = [&](const SearchState& s) {
    Schedule schedule;
    schedule.model_dvfs = true;
    for (const std::size_t job : s.cpu) {
      schedule.cpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kCpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    for (const std::size_t job : s.gpu) {
      schedule.gpu.push_back(
          {job, m.best_solo_level(ctx.job_name(job), sim::DeviceKind::kGpu,
                                  ctx.cap)
                    .value_or(0)});
    }
    return schedule;
  };

  // Admissible load bound on any completion of a partial placement.
  auto bound = [&](const SearchState& s) {
    return std::max({s.cpu_load, s.gpu_load,
                     (s.cpu_load + s.gpu_load + s.remaining) / 2.0});
  };

  // Children of a state: the first unplaced job on each feasible device.
  // Branching on the first unplaced job only enumerates every *placement*
  // (2^n assignments) exactly once, with per-device order fixed to index
  // order; order is polished by local refinement at the end — placement
  // dominates the makespan, order is a local matter. GPU-first child order
  // tends to find good incumbents early for this GPU-leaning suite.
  auto expand = [&](const SearchState& s, auto&& emit) {
    for (std::size_t job = 0; job < n; ++job) {
      if (s.placed[job]) continue;
      if (t_cpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.cpu.push_back(job);
        next.cpu_load += t_cpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        emit(std::move(next));
      }
      if (t_gpu[job] < 1e18) {
        SearchState next = s;
        next.placed[job] = true;
        next.gpu.push_back(job);
        next.gpu_load += t_gpu[job];
        next.remaining -= std::min(t_cpu[job], t_gpu[job]);
        emit(std::move(next));
      }
      break;
    }
  };

  SearchState root;
  root.placed.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    root.remaining += std::min(t_cpu[i], t_gpu[i]);
  }

  // A plan-cache near hit donates a *schedule* for this job set. Its raw
  // makespan is not a sound pruning bound: the donor was order-refined
  // and/or levelled under a different cap, so it can lie strictly below
  // every leaf this search enumerates (index-order sequences at the
  // current cap's best solo levels) — seeding the strict `bound >
  // incumbent` test with it would cut the path to the very leaf a cold
  // run returns and silently fall back to the HCS+ seed. So the donor is
  // re-encoded into leaf space first: keep only its *placement* (which
  // device each job runs on), rebuild index order and current-cap levels,
  // and evaluate that. The re-encoding is itself a reachable leaf, so its
  // makespan upper-bounds no reachable leaf's minimum away, and strict
  // pruning keeps every minimum-makespan leaf alive: the reduction below
  // lands on the same first-found minimum as a cold run. Donors that do
  // not map into leaf space (solo/shared/batch-launch forms, or a device
  // the current cap makes infeasible) are dropped, as is the whole hint
  // whenever the node budget could bind — a truncated search keeps leaves
  // by visit order, which warm pruning would perturb. The full tree has
  // at most 2^(n+1)-1 nodes, so the default budget never binds for
  // default-sized batches and the hint stays active on the hot path.
  Seconds hint = std::numeric_limits<Seconds>::infinity();
  warm_started_ = false;
  const bool budget_cannot_bind =
      n + 1 < 8 * sizeof(std::size_t) &&
      options_.node_budget >= (std::size_t{1} << (n + 1)) - 1;
  if (ctx.incumbent_hint && budget_cannot_bind) {
    const Schedule& donor = *ctx.incumbent_hint;
    const bool plain_corun = !donor.cpu_batch_launch && !donor.shared_queue &&
                             donor.solo.empty() && donor.shared.empty() &&
                             donor.cpu.size() + donor.gpu.size() == n;
    if (plain_corun) {
      SearchState encoded = root;
      bool feasible = true;
      auto place = [&](const std::vector<ScheduledJob>& jobs,
                       const std::vector<Seconds>& t,
                       std::vector<std::size_t>& device) {
        for (const ScheduledJob& entry : jobs) {
          if (entry.job >= n || encoded.placed[entry.job] ||
              t[entry.job] >= 1e18) {
            feasible = false;
            return;
          }
          encoded.placed[entry.job] = true;
          device.push_back(entry.job);
        }
        std::sort(device.begin(), device.end());
      };
      place(donor.cpu, t_cpu, encoded.cpu);
      if (feasible) place(donor.gpu, t_gpu, encoded.gpu);
      if (feasible) {
        hint = evaluator.makespan(leaf_schedule(encoded));
        warm_started_ = true;
        CORUN_TRACE_INSTANT("sched", "bnb.warm_start");
      }
    }
  }

  // Shared search telemetry. The incumbent *value* is shared across
  // subtree tasks so every task prunes against the best schedule found
  // anywhere; incumbent *schedules* stay task-local and are reduced in
  // frontier order below, which keeps the returned plan deterministic (the
  // strict `bound > incumbent` pruning test can never cut a subtree's path
  // to its own minimum when that minimum ties the global one).
  std::atomic<double> incumbent{seed_makespan};
  std::atomic<std::size_t> nodes{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> leaves{0};
  std::atomic<std::size_t> incumbent_updates{0};
  std::atomic<bool> budget_exhausted{false};

  // Breadth-first root expansion into a frontier of independent subtrees —
  // the top-level fan-out. The target is a constant (not the worker count)
  // so the frontier — and therefore tie-breaking between equal-makespan
  // leaves — is identical for every --jobs setting.
  constexpr std::size_t fanout_target = 32;
  std::deque<SearchState> frontier{root};
  std::vector<std::pair<Seconds, Schedule>> early;  // leaves met while fanning
  while (!frontier.empty() && frontier.size() < fanout_target) {
    if (nodes.load() >= options_.node_budget) {
      budget_exhausted.store(true);
      break;
    }
    const SearchState s = std::move(frontier.front());
    frontier.pop_front();
    ++nodes;
    if (s.cpu.size() + s.gpu.size() == n) {
      ++leaves;
      Schedule candidate = leaf_schedule(s);
      const Seconds makespan = evaluator.makespan(candidate);
      early.emplace_back(makespan, std::move(candidate));
      if (atomic_min(incumbent, makespan)) ++incumbent_updates;
      continue;
    }
    if (bound(s) > incumbent.load()) {
      ++pruned;
      continue;
    }
    expand(s, [&](SearchState next) { frontier.push_back(std::move(next)); });
  }

  // The warm hint joins only now, after the fan-out: the frontier
  // decomposition above — and with it the deterministic reduction order
  // that breaks ties between equal-makespan leaves — is built with the
  // cold incumbent, so it is identical whether or not a hint exists.
  // Tightening the shared bound from here on can only skip subtrees whose
  // every leaf is strictly worse than the hint's leaf-space makespan.
  if (warm_started_) atomic_min(incumbent, hint);

  // Depth-first search of one subtree; returns the subtree's best leaf.
  auto search_subtree = [&](SearchState subtree_root) {
    std::pair<Seconds, Schedule> local{
        std::numeric_limits<Seconds>::infinity(), Schedule{}};
    std::vector<SearchState> stack{std::move(subtree_root)};
    while (!stack.empty()) {
      if (nodes.load() >= options_.node_budget) {
        budget_exhausted.store(true);
        break;
      }
      const SearchState s = std::move(stack.back());
      stack.pop_back();
      ++nodes;
      if (s.cpu.size() + s.gpu.size() == n) {
        ++leaves;
        Schedule candidate = leaf_schedule(s);
        const Seconds makespan = evaluator.makespan(candidate);
        if (makespan < local.first) {
          local = {makespan, std::move(candidate)};
          if (atomic_min(incumbent, makespan)) ++incumbent_updates;
        }
        continue;
      }
      if (bound(s) > incumbent.load()) {
        ++pruned;
        continue;
      }
      expand(s, [&](SearchState next) { stack.push_back(std::move(next)); });
    }
    return local;
  };

  std::vector<std::pair<Seconds, Schedule>> subtree_best(frontier.size());
  std::vector<SearchState> roots(frontier.begin(), frontier.end());
  common::TaskPool::shared().parallel_for_index(
      roots.size(), [&](std::size_t i) {
        subtree_best[i] = search_subtree(std::move(roots[i]));
      });

  // Deterministic reduction: the HCS+ seed first, then leaves met during
  // fan-out, then subtrees in frontier order — strict improvement only,
  // matching the serial search's first-found tie-breaking.
  Seconds best = seed_makespan;
  for (auto& group : {std::ref(early), std::ref(subtree_best)}) {
    for (auto& [makespan, schedule] : group.get()) {
      if (makespan < best) {
        best = makespan;
        best_schedule = std::move(schedule);
      }
    }
  }

  nodes_ = nodes.load();
  pruned_ = pruned.load();
  leaves_ = leaves.load();
  incumbent_updates_ = incumbent_updates.load();
  budget_exhausted_ = budget_exhausted.load();
  CORUN_TRACE_COUNTER("bnb.nodes", nodes_);
  CORUN_TRACE_COUNTER("bnb.pruned", pruned_);
  CORUN_TRACE_COUNTER("bnb.leaves", leaves_);
  CORUN_TRACE_COUNTER("bnb.incumbent_updates", incumbent_updates_);
  if (warm_started_) CORUN_TRACE_COUNTER("bnb.warm_started_nodes", nodes_);
  if (budget_exhausted_) CORUN_TRACE_COUNTER("bnb.budget_exhausted", 1);

  // Polish the winning placement's per-device order.
  const Refiner refiner;
  Schedule refined = refiner.refine(ctx, best_schedule);
  if (evaluator.makespan(refined) < best) {
    best_schedule = std::move(refined);
  }

  best_schedule.validate(n);
  return best_schedule;
}

}  // namespace corun::sched
