// The Co-Run Theorem (Sec. IV-A) and the partial-overlap length correction
// (the "side note" of Sec. IV-B).
//
// Co-Run Theorem: for jobs W1, W2 with standalone lengths l1, l2 and co-run
// degradations d1, d2 (ordered so W1 finishes last under co-run), the co-run
// beats running the two jobs back-to-back iff  l1 * d1 < l2.
//
// Partial overlap: when the shorter job finishes, the longer one stops being
// degraded; its total time is the overlap window plus the remaining work at
// the standalone rate.
#pragma once

#include "corun/common/units.hpp"

namespace corun::sched {

/// Co-run completion times of a pair, accounting for partial overlap.
struct PairLengths {
  Seconds first = 0.0;   ///< completion time of job 1
  Seconds second = 0.0;  ///< completion time of job 2
  [[nodiscard]] Seconds makespan() const noexcept {
    return first > second ? first : second;
  }
};

/// True iff co-running beats sequential execution (the theorem's test).
/// `l1`, `l2` are standalone lengths; `d1`, `d2` fractional degradations.
[[nodiscard]] bool corun_beneficial(Seconds l1, double d1, Seconds l2,
                                    double d2);

/// Exact pair completion times under partial overlap. Both jobs start at
/// t = 0; whichever finishes first releases the other to run undegraded.
[[nodiscard]] PairLengths corun_pair_lengths(Seconds l1, double d1, Seconds l2,
                                             double d2);

}  // namespace corun::sched
