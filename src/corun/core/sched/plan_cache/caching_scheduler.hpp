// CachingScheduler: makes any registry scheduler memoized.
//
// Wraps an inner Scheduler and a shared PlanCache. plan() first consults
// the cache with the request's canonical signature: an exact hit returns
// the cached schedule (remapped to the requesting batch's indices) without
// invoking the inner search; a near hit (same family at a different cap,
// or a cached superset batch) donates its schedule to the inner search as
// SchedulerContext::incumbent_hint — branch-and-bound re-encodes it into
// its own leaf space and uses the result to start pruning tight. Misses
// run the inner search and store its result.
//
// Invariant: with the cache attached, the returned schedule is always
// byte-identical to what the inner scheduler would have produced cold —
// exact hits replay the stored result of the identical request, and warm
// hints only tighten the B&B incumbent value (after leaf-space
// re-encoding, and only when the node budget provably cannot truncate the
// search) without ever being returned themselves. Stochastic planners
// whose output depends on batch *order* (the "random" baseline) bypass
// the cache entirely, because the order-invariant signature would alias
// their order-sensitive results.
#pragma once

#include <memory>
#include <string>

#include "corun/core/sched/plan_cache/plan_cache.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

class CachingScheduler : public Scheduler {
 public:
  /// `registry_id` and `seed` identify the inner algorithm in signatures;
  /// a null `cache` degrades to a plain pass-through.
  CachingScheduler(std::unique_ptr<Scheduler> inner,
                   std::shared_ptr<PlanCache> cache, std::string registry_id,
                   std::uint64_t seed);

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] const PlanCache* cache() const noexcept {
    return cache_.get();
  }

  /// The wrapped algorithm, for callers that inspect planner-specific
  /// state after plan() (e.g. B&B budget exhaustion). On an exact cache
  /// hit the inner planner did not run for the last request — check
  /// last_exact_hit() before trusting its per-plan accessors, which would
  /// otherwise report a *previous* request's search.
  [[nodiscard]] const Scheduler* inner() const noexcept {
    return inner_.get();
  }

  /// True when the last plan() was served from the cache without running
  /// the inner planner.
  [[nodiscard]] bool last_exact_hit() const noexcept {
    return last_exact_hit_;
  }

  /// Installs an amortized signature builder (see signature.hpp). The
  /// serving daemon shares one builder across all request schedulers so
  /// the per-request signature cost is string assembly, not re-digesting
  /// the model artifacts. Signatures are byte-identical either way.
  void set_signature_builder(std::shared_ptr<const SignatureBuilder> builder) {
    signature_builder_ = std::move(builder);
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::shared_ptr<PlanCache> cache_;
  std::string registry_id_;
  std::uint64_t seed_;
  bool bypass_;  ///< order-sensitive planners are never cached
  bool last_exact_hit_ = false;
  std::shared_ptr<const SignatureBuilder> signature_builder_;
};

/// Registry convenience: constructs the named scheduler and, when `cache`
/// is non-null, wraps it so its plans are memoized. Returns nullptr for
/// unknown names (same contract as make_scheduler).
[[nodiscard]] std::unique_ptr<Scheduler> make_cached_scheduler(
    const std::string& name, std::uint64_t seed,
    std::shared_ptr<PlanCache> cache);

}  // namespace corun::sched
