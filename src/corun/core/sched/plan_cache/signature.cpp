#include "corun/core/sched/plan_cache/signature.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/core/model/corun_predictor.hpp"
#include "corun/profile/profile_db.hpp"

namespace corun::sched {

std::uint64_t job_profile_digest(const profile::ProfileDB& db,
                                 const std::string& job) {
  Fnv64 h;
  for (const sim::DeviceKind d :
       {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
    h.update(d == sim::DeviceKind::kCpu ? "cpu" : "gpu");
    for (const sim::FreqLevel level : db.levels(job, d)) {
      const profile::ProfileEntry& e = db.at(job, d, level);
      h.update(std::to_string(level));
      h.update(signature_double(e.time));
      h.update(signature_double(e.avg_bw));
      h.update(signature_double(e.avg_power));
      h.update(signature_double(e.energy));
    }
  }
  return h.digest();
}

namespace {

std::uint64_t ladder_digest(const sim::FrequencyLadder& ladder) {
  Fnv64 h;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    h.update(signature_double(ladder.at(static_cast<sim::FreqLevel>(i))));
  }
  return h.digest();
}

std::uint64_t machine_digest(const sim::MachineConfig& config) {
  Fnv64 h;
  h.update(hex64(ladder_digest(config.cpu_ladder)));
  h.update(hex64(ladder_digest(config.gpu_ladder)));
  h.update(std::to_string(config.cpu_cores));
  for (const double v :
       {config.mem_bw_freq_sensitivity, config.cs_overhead,
        config.cs_locality_penalty, config.llc_capacity_mb,
        config.llc_pressure_saturation_bw, config.power.uncore,
        config.memory.saturation_bw, config.memory.cpu_share_weight,
        config.memory.gpu_share_weight, config.memory.cpu_latency_alpha,
        config.memory.gpu_latency_alpha, config.memory.cpu_latency_gamma,
        config.memory.gpu_latency_gamma, config.memory.latency_base,
        config.memory.latency_self}) {
    h.update(signature_double(v));
  }
  for (const auto& dev : {config.power.cpu, config.power.gpu}) {
    for (const double v : {dev.leakage, dev.idle, dev.dyn_max, dev.v_floor,
                           dev.stall_activity}) {
      h.update(signature_double(v));
    }
  }
  return h.digest();
}

std::uint64_t grid_digest(const model::DegradationGrid& grid) {
  Fnv64 h;
  for (const auto* axis : {&grid.cpu_axis, &grid.gpu_axis}) {
    for (const double v : *axis) h.update(signature_double(v));
    h.update("/");
  }
  for (const auto* surface : {&grid.cpu_deg, &grid.gpu_deg}) {
    for (const auto& row : *surface) {
      for (const double v : row) h.update(signature_double(v));
    }
    h.update("/");
  }
  return h.digest();
}

}  // namespace

std::string signature_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

namespace {

/// Shared assembly tail of make_signature and SignatureBuilder::build:
/// the caller supplies the precomputed digest renderings; `job_hex(name)`
/// returns hex64 of that job's profile digest.
template <typename JobHexFn>
PlanSignature assemble_signature(const SchedulerContext& ctx,
                                 const std::string& scheduler_id,
                                 std::uint64_t seed,
                                 const std::string& machine_hex,
                                 const std::string& grid_hex,
                                 const std::string& idle_text,
                                 const JobHexFn& job_hex) {
  PlanSignature sig;
  sig.job_names = ctx.job_names();
  std::sort(sig.job_names.begin(), sig.job_names.end());

  std::ostringstream family;
  family << "v1;scheduler=" << scheduler_id << ";seed=" << seed << ";policy="
         << (ctx.policy == sim::GovernorPolicy::kCpuBiased ? "cpu" : "gpu")
         << ";machine=" << machine_hex << ";grid=" << grid_hex
         << ";idle=" << idle_text;
  sig.family = family.str();

  std::ostringstream canonical;
  canonical << sig.family << ";cap=";
  canonical << (ctx.cap ? signature_double(*ctx.cap) : "none");
  for (const std::string& name : sig.job_names) {
    canonical << ";job{" << name << "|" << job_hex(name) << "}";
  }
  sig.canonical = canonical.str();

  Fnv64 h;
  h.update(sig.canonical);
  sig.hash = h.digest();
  Fnv64 fh;
  fh.update(sig.family);
  sig.family_hash = fh.digest();
  return sig;
}

}  // namespace

PlanSignature make_signature(const SchedulerContext& ctx,
                             const std::string& scheduler_id,
                             std::uint64_t seed) {
  const model::CoRunPredictor& m = ctx.model();
  const profile::ProfileDB& db = m.db();
  return assemble_signature(
      ctx, scheduler_id, seed, hex64(machine_digest(m.machine())),
      hex64(grid_digest(m.interpolator().grid())),
      signature_double(db.idle_power()),
      [&db](const std::string& name) {
        return hex64(job_profile_digest(db, name));
      });
}

SignatureBuilder::SignatureBuilder(const model::CoRunPredictor& predictor)
    : predictor_(&predictor),
      machine_hex_(hex64(machine_digest(predictor.machine()))),
      grid_hex_(hex64(grid_digest(predictor.interpolator().grid()))),
      idle_text_(signature_double(predictor.db().idle_power())) {
  for (const std::string& job : predictor.db().jobs()) {
    job_digest_hex_[job] = hex64(job_profile_digest(predictor.db(), job));
  }
}

PlanSignature SignatureBuilder::build(const SchedulerContext& ctx,
                                      const std::string& scheduler_id,
                                      std::uint64_t seed) const {
  CORUN_CHECK_MSG(ctx.predictor == predictor_,
                  "SignatureBuilder used with a different predictor than it "
                  "was built from");
  return assemble_signature(
      ctx, scheduler_id, seed, machine_hex_, grid_hex_, idle_text_,
      [this](const std::string& name) -> const std::string& {
        const auto it = job_digest_hex_.find(name);
        CORUN_CHECK_MSG(it != job_digest_hex_.end(),
                        "SignatureBuilder: job '" + name +
                            "' has no profile rows in the builder's db");
        return it->second;
      });
}

}  // namespace corun::sched
