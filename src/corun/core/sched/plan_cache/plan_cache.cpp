#include "corun/core/sched/plan_cache/plan_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"
#include "corun/common/trace/trace.hpp"

namespace corun::sched {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// True when every name in `needed` (sorted) appears in `have` (sorted).
bool covers(const std::vector<std::string>& have,
            const std::vector<std::string>& needed) {
  return std::includes(have.begin(), have.end(), needed.begin(),
                       needed.end());
}

/// Restricts a by-name schedule CSV to the rows whose job is in `keep`,
/// preserving flags and relative order. Returns the filtered CSV text.
std::optional<std::string> restrict_schedule_csv(
    const std::string& text, const std::vector<std::string>& keep) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return std::nullopt;
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows.value()) {
    if (row.empty()) continue;
    if (row[0] == "flags") {
      writer.write_row(row);
      continue;
    }
    if (row[0] != "entry" || row.size() != 6) return std::nullopt;
    if (std::binary_search(keep.begin(), keep.end(), row[3])) {
      writer.write_row(row);
    }
  }
  return out.str();
}

}  // namespace

PlanCache::PlanCache(PlanCacheConfig config) : config_(std::move(config)) {
  CORUN_CHECK_MSG(config_.capacity > 0, "plan cache capacity must be > 0");
  CORUN_CHECK_MSG(config_.shards > 0, "plan cache shard count must be > 0");
  shards_ = std::vector<Shard>(config_.shards);
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
  }
}

Expected<std::shared_ptr<PlanCache>> PlanCache::from_spec(
    const std::string& spec) {
  if (spec.empty() || spec == "off") return std::shared_ptr<PlanCache>{};
  PlanCacheConfig config;
  if (spec == "mem") return std::make_shared<PlanCache>(config);
  if (spec.rfind("mem:", 0) == 0) {
    // mem:<capacity> or mem:<capacity>:<shards>.
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.find(':');
    const std::string cap_text = rest.substr(0, colon);
    try {
      std::size_t consumed = 0;
      const long long capacity = std::stoll(cap_text, &consumed);
      if (consumed != cap_text.size() || capacity <= 0) {
        throw std::invalid_argument("capacity");
      }
      config.capacity = static_cast<std::size_t>(capacity);
      if (colon != std::string::npos) {
        const std::string shard_text = rest.substr(colon + 1);
        const long long shards = std::stoll(shard_text, &consumed);
        if (consumed != shard_text.size() || shards <= 0) {
          throw std::invalid_argument("shards");
        }
        config.shards = static_cast<std::size_t>(shards);
      }
    } catch (const std::exception&) {
      return fail("plan cache: bad capacity/shards in '" + spec + "'",
                  ErrorCategory::kParse);
    }
    return std::make_shared<PlanCache>(config);
  }
  if (spec.rfind("dir:", 0) == 0 && spec.size() > 4) {
    config.dir = spec.substr(4);
    return std::make_shared<PlanCache>(config);
  }
  return fail("plan cache: spec must be off|mem|mem:<capacity>[:<shards>]"
              "|dir:<path>, got '" + spec + "'",
              ErrorCategory::kParse);
}

std::optional<Schedule> PlanCache::lookup(
    const PlanSignature& sig, const std::vector<std::string>& batch_names) {
  Shard& shard = shard_for(sig);
  std::string schedule_csv;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(sig.canonical);
    if (it == shard.index.end()) {
      if (auto loaded = load_from_disk(shard, sig)) {
        shard.stats.disk_hits.fetch_add(1, kRelaxed);
        insert_locked(shard, std::move(*loaded));
        it = shard.index.find(sig.canonical);
      }
    }
    if (it == shard.index.end()) {
      shard.stats.misses.fetch_add(1, kRelaxed);
      CORUN_TRACE_COUNTER("plan_cache.misses", 1);
      return std::nullopt;
    }
    // Touch: splice to the MRU end. The CSV text is copied out so the
    // (comparatively expensive) parse below runs outside the lock.
    shard.lru.splice(shard.lru.end(), shard.lru, it->second);
    it->second = std::prev(shard.lru.end());
    schedule_csv = it->second->schedule_csv;
  }
  auto schedule = schedule_from_csv(schedule_csv, batch_names);
  if (!schedule.has_value()) {
    // A stored plan that no longer resolves (should not happen for an
    // exact signature match) is treated as a miss rather than an error.
    shard.stats.misses.fetch_add(1, kRelaxed);
    CORUN_TRACE_COUNTER("plan_cache.misses", 1);
    return std::nullopt;
  }
  shard.stats.hits.fetch_add(1, kRelaxed);
  CORUN_TRACE_COUNTER("plan_cache.hits", 1);
  return std::move(schedule).value();
}

std::optional<WarmStartCandidate> PlanCache::near_lookup(
    const PlanSignature& sig, const std::vector<std::string>& batch_names) {
  // Family entries colocate in one shard by construction, so the scan
  // never needs to leave it.
  Shard& shard = shard_for(sig);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Most recently used first: re-plans typically follow the entry that was
  // just stored (previous cap, pre-arrival batch), so recency is both the
  // best heuristic and a deterministic tie-break.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    if (it->family != sig.family) continue;
    if (it->canonical == sig.canonical) continue;
    if (!covers(it->job_names, sig.job_names)) continue;
    const auto restricted =
        restrict_schedule_csv(it->schedule_csv, sig.job_names);
    if (!restricted) continue;
    auto schedule = schedule_from_csv(*restricted, batch_names);
    if (!schedule.has_value()) continue;
    shard.stats.warm_hits.fetch_add(1, kRelaxed);
    CORUN_TRACE_COUNTER("plan_cache.warm_hits", 1);
    return WarmStartCandidate{.schedule = std::move(schedule).value(),
                              .cached_makespan = it->makespan};
  }
  return std::nullopt;
}

void PlanCache::store(const PlanSignature& sig, const Schedule& schedule,
                      const std::vector<std::string>& batch_names,
                      Seconds makespan) {
  std::ostringstream oss;
  schedule_to_csv(schedule, batch_names, oss);
  Entry entry{.canonical = sig.canonical,
              .family = sig.family,
              .job_names = sig.job_names,
              .schedule_csv = oss.str(),
              .makespan = makespan};
  Shard& shard = shard_for(sig);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats.stores.fetch_add(1, kRelaxed);
  CORUN_TRACE_COUNTER("plan_cache.stores", 1);
  if (!config_.dir.empty()) save_to_disk(shard, entry, sig.hash);
  insert_locked(shard, std::move(entry));
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats total;
  for (const Shard& shard : shards_) {
    total.hits += shard.stats.hits.load(kRelaxed);
    total.misses += shard.stats.misses.load(kRelaxed);
    total.warm_hits += shard.stats.warm_hits.load(kRelaxed);
    total.evictions += shard.stats.evictions.load(kRelaxed);
    total.disk_hits += shard.stats.disk_hits.load(kRelaxed);
    total.stores += shard.stats.stores.load(kRelaxed);
    total.io_failures += shard.stats.io_failures.load(kRelaxed);
  }
  return total;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

std::vector<std::string> PlanCache::lru_keys() const {
  std::vector<std::string> keys;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& e : shard.lru) keys.push_back(e.canonical);
  }
  return keys;
}

void PlanCache::insert_locked(Shard& shard, Entry entry) {
  const auto it = shard.index.find(entry.canonical);
  if (it != shard.index.end()) {
    *it->second = std::move(entry);
    shard.lru.splice(shard.lru.end(), shard.lru, it->second);
    it->second = std::prev(shard.lru.end());
    return;
  }
  if (shard.lru.size() >= config_.capacity) {
    shard.index.erase(shard.lru.front().canonical);
    shard.lru.pop_front();
    shard.stats.evictions.fetch_add(1, kRelaxed);
    CORUN_TRACE_COUNTER("plan_cache.evictions", 1);
  }
  shard.lru.push_back(std::move(entry));
  shard.index[shard.lru.back().canonical] = std::prev(shard.lru.end());
}

std::string PlanCache::entry_path(std::uint64_t hash) const {
  return config_.dir + "/plan_" + hex64(hash) + ".csv";
}

std::string plan_cache_entry_to_csv(const std::string& canonical,
                                    const std::string& family,
                                    const std::vector<std::string>& job_names,
                                    const std::string& schedule_csv,
                                    Seconds makespan) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  writer.write_row({"sig", canonical});
  writer.write_row({"family", family});
  writer.write_row({"makespan", signature_double(makespan)});
  std::vector<std::string> jobs_row{"jobs"};
  jobs_row.insert(jobs_row.end(), job_names.begin(), job_names.end());
  writer.write_row(jobs_row);
  oss << schedule_csv;
  return oss.str();
}

std::optional<PlanCache::Entry> PlanCache::load_from_disk(
    Shard& shard, const PlanSignature& sig) {
  if (config_.dir.empty()) return std::nullopt;
  std::ifstream in(entry_path(sig.hash), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    shard.stats.io_failures.fetch_add(1, kRelaxed);
    return std::nullopt;
  }
  const auto rows = parse_csv(content.str());
  if (!rows.has_value() || rows.value().size() < 4) {
    shard.stats.io_failures.fetch_add(1, kRelaxed);
    return std::nullopt;
  }
  const auto& r = rows.value();
  if (r[0].size() != 2 || r[0][0] != "sig" || r[1].size() != 2 ||
      r[1][0] != "family" || r[2].size() != 2 || r[2][0] != "makespan" ||
      r[3].empty() || r[3][0] != "jobs") {
    shard.stats.io_failures.fetch_add(1, kRelaxed);
    return std::nullopt;
  }
  // The full signature is stored precisely so a file-name hash collision or
  // stale artifact can never alias: mismatches are plain misses.
  if (r[0][1] != sig.canonical) return std::nullopt;
  Entry entry;
  entry.canonical = r[0][1];
  entry.family = r[1][1];
  try {
    entry.makespan = std::stod(r[2][1]);
  } catch (const std::exception&) {
    shard.stats.io_failures.fetch_add(1, kRelaxed);
    return std::nullopt;
  }
  entry.job_names.assign(r[3].begin() + 1, r[3].end());
  std::ostringstream schedule;
  CsvWriter writer(schedule);
  for (std::size_t i = 4; i < r.size(); ++i) {
    if (r[i].empty()) continue;
    writer.write_row(r[i]);
  }
  entry.schedule_csv = schedule.str();
  return entry;
}

void PlanCache::save_to_disk(Shard& shard, const Entry& entry,
                             std::uint64_t hash) {
  // Write-then-rename: processes sharing one dir: tier (CORUN_PLAN_CACHE)
  // may store the same signature concurrently, and interleaved writes to
  // the final path would leave a torn file that reads as a miss yet
  // squats on the slot until overwritten. The temp name carries the pid
  // *and* a process-wide counter: two shards of one process (or a
  // recycled pid on a shared dir: tier) can flush the same signature hash
  // concurrently, and a pid-only suffix would let their writes interleave
  // in one temp file. rename() within one directory then atomically
  // publishes a complete file.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string path = entry_path(hash);
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(tmp_serial.fetch_add(1, kRelaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      shard.stats.io_failures.fetch_add(1, kRelaxed);
      return;
    }
    out << plan_cache_entry_to_csv(entry.canonical, entry.family,
                                   entry.job_names, entry.schedule_csv,
                                   entry.makespan);
    out.close();
    if (!out) {
      shard.stats.io_failures.fetch_add(1, kRelaxed);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    shard.stats.io_failures.fetch_add(1, kRelaxed);
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace corun::sched
