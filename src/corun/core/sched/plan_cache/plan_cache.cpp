#include "corun/core/sched/plan_cache/plan_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"
#include "corun/common/trace/trace.hpp"

namespace corun::sched {

namespace {

/// True when every name in `needed` (sorted) appears in `have` (sorted).
bool covers(const std::vector<std::string>& have,
            const std::vector<std::string>& needed) {
  return std::includes(have.begin(), have.end(), needed.begin(),
                       needed.end());
}

/// Restricts a by-name schedule CSV to the rows whose job is in `keep`,
/// preserving flags and relative order. Returns the filtered CSV text.
std::optional<std::string> restrict_schedule_csv(
    const std::string& text, const std::vector<std::string>& keep) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return std::nullopt;
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows.value()) {
    if (row.empty()) continue;
    if (row[0] == "flags") {
      writer.write_row(row);
      continue;
    }
    if (row[0] != "entry" || row.size() != 6) return std::nullopt;
    if (std::binary_search(keep.begin(), keep.end(), row[3])) {
      writer.write_row(row);
    }
  }
  return out.str();
}

}  // namespace

PlanCache::PlanCache(PlanCacheConfig config) : config_(std::move(config)) {
  CORUN_CHECK_MSG(config_.capacity > 0, "plan cache capacity must be > 0");
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
  }
}

Expected<std::shared_ptr<PlanCache>> PlanCache::from_spec(
    const std::string& spec) {
  if (spec.empty() || spec == "off") return std::shared_ptr<PlanCache>{};
  PlanCacheConfig config;
  if (spec == "mem") return std::make_shared<PlanCache>(config);
  if (spec.rfind("mem:", 0) == 0) {
    try {
      const long long capacity = std::stoll(spec.substr(4));
      if (capacity <= 0) throw std::invalid_argument("non-positive");
      config.capacity = static_cast<std::size_t>(capacity);
    } catch (const std::exception&) {
      return fail("plan cache: bad capacity in '" + spec + "'",
                  ErrorCategory::kParse);
    }
    return std::make_shared<PlanCache>(config);
  }
  if (spec.rfind("dir:", 0) == 0 && spec.size() > 4) {
    config.dir = spec.substr(4);
    return std::make_shared<PlanCache>(config);
  }
  return fail("plan cache: spec must be off|mem|mem:<capacity>|dir:<path>, "
              "got '" + spec + "'",
              ErrorCategory::kParse);
}

std::optional<Schedule> PlanCache::lookup(
    const PlanSignature& sig, const std::vector<std::string>& batch_names) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(sig.canonical);
  if (it == index_.end()) {
    if (auto loaded = load_from_disk_locked(sig)) {
      ++stats_.disk_hits;
      insert_locked(std::move(*loaded));
      it = index_.find(sig.canonical);
    }
  }
  if (it == index_.end()) {
    ++stats_.misses;
    CORUN_TRACE_COUNTER("plan_cache.misses", 1);
    return std::nullopt;
  }
  // Touch: splice to the MRU end.
  lru_.splice(lru_.end(), lru_, it->second);
  it->second = std::prev(lru_.end());
  auto schedule = schedule_from_csv(it->second->schedule_csv, batch_names);
  if (!schedule.has_value()) {
    // A stored plan that no longer resolves (should not happen for an
    // exact signature match) is treated as a miss rather than an error.
    ++stats_.misses;
    CORUN_TRACE_COUNTER("plan_cache.misses", 1);
    return std::nullopt;
  }
  ++stats_.hits;
  CORUN_TRACE_COUNTER("plan_cache.hits", 1);
  return std::move(schedule).value();
}

std::optional<WarmStartCandidate> PlanCache::near_lookup(
    const PlanSignature& sig, const std::vector<std::string>& batch_names) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Most recently used first: re-plans typically follow the entry that was
  // just stored (previous cap, pre-arrival batch), so recency is both the
  // best heuristic and a deterministic tie-break.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (it->family != sig.family) continue;
    if (it->canonical == sig.canonical) continue;
    if (!covers(it->job_names, sig.job_names)) continue;
    const auto restricted =
        restrict_schedule_csv(it->schedule_csv, sig.job_names);
    if (!restricted) continue;
    auto schedule = schedule_from_csv(*restricted, batch_names);
    if (!schedule.has_value()) continue;
    ++stats_.warm_hits;
    CORUN_TRACE_COUNTER("plan_cache.warm_hits", 1);
    return WarmStartCandidate{.schedule = std::move(schedule).value(),
                              .cached_makespan = it->makespan};
  }
  return std::nullopt;
}

void PlanCache::store(const PlanSignature& sig, const Schedule& schedule,
                      const std::vector<std::string>& batch_names,
                      Seconds makespan) {
  std::ostringstream oss;
  schedule_to_csv(schedule, batch_names, oss);
  Entry entry{.canonical = sig.canonical,
              .family = sig.family,
              .job_names = sig.job_names,
              .schedule_csv = oss.str(),
              .makespan = makespan};
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  CORUN_TRACE_COUNTER("plan_cache.stores", 1);
  if (!config_.dir.empty()) save_to_disk_locked(entry, sig.hash);
  insert_locked(std::move(entry));
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::vector<std::string> PlanCache::lru_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& e : lru_) keys.push_back(e.canonical);
  return keys;
}

void PlanCache::insert_locked(Entry entry) {
  const auto it = index_.find(entry.canonical);
  if (it != index_.end()) {
    *it->second = std::move(entry);
    lru_.splice(lru_.end(), lru_, it->second);
    it->second = std::prev(lru_.end());
    return;
  }
  if (lru_.size() >= config_.capacity) {
    index_.erase(lru_.front().canonical);
    lru_.pop_front();
    ++stats_.evictions;
    CORUN_TRACE_COUNTER("plan_cache.evictions", 1);
  }
  lru_.push_back(std::move(entry));
  index_[lru_.back().canonical] = std::prev(lru_.end());
}

std::string PlanCache::entry_path(std::uint64_t hash) const {
  return config_.dir + "/plan_" + hex64(hash) + ".csv";
}

std::string plan_cache_entry_to_csv(const std::string& canonical,
                                    const std::string& family,
                                    const std::vector<std::string>& job_names,
                                    const std::string& schedule_csv,
                                    Seconds makespan) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  writer.write_row({"sig", canonical});
  writer.write_row({"family", family});
  writer.write_row({"makespan", signature_double(makespan)});
  std::vector<std::string> jobs_row{"jobs"};
  jobs_row.insert(jobs_row.end(), job_names.begin(), job_names.end());
  writer.write_row(jobs_row);
  oss << schedule_csv;
  return oss.str();
}

std::optional<PlanCache::Entry> PlanCache::load_from_disk_locked(
    const PlanSignature& sig) {
  if (config_.dir.empty()) return std::nullopt;
  std::ifstream in(entry_path(sig.hash), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    ++stats_.io_failures;
    return std::nullopt;
  }
  const auto rows = parse_csv(content.str());
  if (!rows.has_value() || rows.value().size() < 4) {
    ++stats_.io_failures;
    return std::nullopt;
  }
  const auto& r = rows.value();
  if (r[0].size() != 2 || r[0][0] != "sig" || r[1].size() != 2 ||
      r[1][0] != "family" || r[2].size() != 2 || r[2][0] != "makespan" ||
      r[3].empty() || r[3][0] != "jobs") {
    ++stats_.io_failures;
    return std::nullopt;
  }
  // The full signature is stored precisely so a file-name hash collision or
  // stale artifact can never alias: mismatches are plain misses.
  if (r[0][1] != sig.canonical) return std::nullopt;
  Entry entry;
  entry.canonical = r[0][1];
  entry.family = r[1][1];
  try {
    entry.makespan = std::stod(r[2][1]);
  } catch (const std::exception&) {
    ++stats_.io_failures;
    return std::nullopt;
  }
  entry.job_names.assign(r[3].begin() + 1, r[3].end());
  std::ostringstream schedule;
  CsvWriter writer(schedule);
  for (std::size_t i = 4; i < r.size(); ++i) {
    if (r[i].empty()) continue;
    writer.write_row(r[i]);
  }
  entry.schedule_csv = schedule.str();
  return entry;
}

void PlanCache::save_to_disk_locked(const Entry& entry, std::uint64_t hash) {
  // Write-then-rename: processes sharing one dir: tier (CORUN_PLAN_CACHE)
  // may store the same signature concurrently, and interleaved writes to
  // the final path would leave a torn file that reads as a miss yet
  // squats on the slot until overwritten. The temp name is per-process
  // (the mutex already serializes threads), and rename() within one
  // directory atomically publishes a complete file.
  const std::string path = entry_path(hash);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      ++stats_.io_failures;
      return;
    }
    out << plan_cache_entry_to_csv(entry.canonical, entry.family,
                                   entry.job_names, entry.schedule_csv,
                                   entry.makespan);
    out.close();
    if (!out) {
      ++stats_.io_failures;
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ++stats_.io_failures;
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace corun::sched
