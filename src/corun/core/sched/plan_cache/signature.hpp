// Canonical signatures of scheduling requests, the key space of the plan
// cache.
//
// A scheduling request is fully determined by: the scheduler (registry id,
// seed), the planning inputs it may consult through SchedulerContext (job
// set with their standalone profiles, power cap, governor policy), and the
// model artifacts behind the predictor (machine configuration with both
// frequency ladders, degradation grid, idle power). The signature folds all
// of that into one canonical string:
//
//   - order-invariant: per-job blocks are sorted by instance name, so the
//     same job set submitted in any batch order maps to one cache line
//     (cached schedules reference jobs by name and are remapped to the
//     requesting batch's indices on a hit);
//   - content-addressed: profile rows, grid cells and ladder frequencies
//     are digested with %.17g renderings, so any profile-db drift (e.g. a
//     noise event) or re-characterization changes the signature and
//     invalidates stale entries instead of serving them;
//   - two granularities: `canonical` identifies the exact request, while
//     `family` drops the cap and the job set — entries of one family are
//     re-plans of the same scheduler over the same model artifacts, which
//     is exactly the population warm-start lookups search.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

/// 64-bit FNV-1a, the digest used throughout the signature scheme. Stable
/// across platforms and runs (no seeding), so persistent-tier file names
/// are reproducible.
class Fnv64 {
 public:
  void update(const std::string& bytes) noexcept {
    for (const char c : bytes) {
      hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Shortest-exact double rendering (%.17g): survives a strtod round trip,
/// shared convention with the CSV artifact writers.
[[nodiscard]] std::string signature_double(double v);

/// Lower-case hex rendering of a 64-bit digest, the persistent-tier file
/// stem.
[[nodiscard]] std::string hex64(std::uint64_t v);

/// Digest of every profile row recorded for one job: the part of the
/// predictor's state that is specific to that job. Times, bandwidths,
/// powers and energies all feed scheduling decisions, so all four fields
/// participate. Besides keying cache signatures, this is the search's
/// job-type identity: the predictor (and with it the makespan evaluator)
/// is a pure function of a job's profile rows, so two jobs with equal
/// digests are interchangeable in any schedule — the equivalence dominance
/// pruning exploits.
[[nodiscard]] std::uint64_t job_profile_digest(const profile::ProfileDB& db,
                                               const std::string& job);

struct PlanSignature {
  std::string canonical;  ///< exact request identity
  std::string family;     ///< canonical minus cap + job set (warm-start pool)
  std::uint64_t hash = 0;        ///< FNV-1a of `canonical`
  std::uint64_t family_hash = 0; ///< FNV-1a of `family`
  std::vector<std::string> job_names;  ///< request's instance names, sorted
};

/// Builds the signature of one request. `scheduler_id` is the registry name
/// ("bnb", "hcs+", ...) and `seed` the value it was constructed with; both
/// are part of the identity because they select the algorithm.
[[nodiscard]] PlanSignature make_signature(const SchedulerContext& ctx,
                                           const std::string& scheduler_id,
                                           std::uint64_t seed);

/// Amortized signature construction for long-lived processes (the serving
/// daemon): the machine, grid, and idle-power digests — and each job's
/// profile digest — are pure functions of the predictor's immutable
/// artifacts, so they are computed once here and reused per request.
/// `build()` produces signatures byte-identical to `make_signature` over
/// the same predictor; the per-request cost drops to string assembly.
///
/// The builder is immutable after construction and safe to share across
/// threads. It must only be used with contexts whose predictor is the one
/// it was built from (checked), because the cached digests would otherwise
/// alias a different model's identity.
class SignatureBuilder {
 public:
  explicit SignatureBuilder(const model::CoRunPredictor& predictor);

  [[nodiscard]] PlanSignature build(const SchedulerContext& ctx,
                                    const std::string& scheduler_id,
                                    std::uint64_t seed) const;

  [[nodiscard]] const model::CoRunPredictor& predictor() const noexcept {
    return *predictor_;
  }

 private:
  const model::CoRunPredictor* predictor_;
  std::string machine_hex_;  ///< hex64(machine_digest)
  std::string grid_hex_;     ///< hex64(grid_digest)
  std::string idle_text_;    ///< signature_double(idle_power)
  std::map<std::string, std::string> job_digest_hex_;  ///< name -> hex64
};

}  // namespace corun::sched
