#include "corun/core/sched/plan_cache/caching_scheduler.hpp"

#include <utility>

#include "corun/common/check.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/registry.hpp"

namespace corun::sched {

CachingScheduler::CachingScheduler(std::unique_ptr<Scheduler> inner,
                                   std::shared_ptr<PlanCache> cache,
                                   std::string registry_id, std::uint64_t seed)
    : inner_(std::move(inner)),
      cache_(std::move(cache)),
      registry_id_(std::move(registry_id)),
      seed_(seed),
      bypass_(registry_id_ == "random") {
  CORUN_CHECK(inner_ != nullptr);
}

Schedule CachingScheduler::plan(const SchedulerContext& ctx) {
  last_exact_hit_ = false;
  if (!cache_ || bypass_) return inner_->plan(ctx);
  CORUN_TRACE_SPAN("sched", "plan_cache.plan");

  // Every cached registry planner is deterministic and ignores its seed
  // ("random", the one seed-sensitive baseline, bypasses the cache above),
  // so the seed is pinned to 0 in the signature: dynamic re-plans derive a
  // fresh seed per event, and keying on it would split identical
  // sub-problems into distinct cache lines.
  const PlanSignature sig = signature_builder_
                                ? signature_builder_->build(ctx, registry_id_, 0)
                                : make_signature(ctx, registry_id_, 0);
  const std::vector<std::string> batch_names = ctx.job_names();
  if (auto hit = cache_->lookup(sig, batch_names)) {
    last_exact_hit_ = true;
    return std::move(*hit);
  }

  SchedulerContext warmed = ctx;
  // A caller-provided hint (the dynamic runtime's repaired plan) takes
  // precedence over a near-hit donation — the repair derives from the very
  // plan that was executing, so it is at least as close to the new optimum
  // as an arbitrary family neighbour — and the near lookup is skipped so
  // warm-hit statistics only count donations that were actually offered.
  // Either way the search re-encodes before pruning, so the choice never
  // affects the returned schedule.
  if (!warmed.incumbent_hint) {
    if (auto near = cache_->near_lookup(sig, batch_names)) {
      // The candidate is a real, valid schedule for this very job set, but
      // its makespan is *not* handed over directly: the donor was refined
      // (and possibly levelled under a different cap), so its value can
      // undercut every solution the inner search enumerates. The search
      // re-encodes the donor into its own solution space before pruning
      // against it — and drops donors that do not map — which is what keeps
      // warm runs byte-identical to cold ones (see branch_and_bound.cpp).
      warmed.incumbent_hint = std::move(near->schedule);
    }
  }

  Schedule planned = inner_->plan(warmed);
  Seconds makespan = 0.0;
  try {
    const MakespanEvaluator evaluator(ctx);
    makespan = evaluator.makespan(planned);
  } catch (const ContractViolation&) {
    // A plan the evaluator cannot replay is still returnable, just not a
    // useful warm-start donor; store it with a zero advisory makespan.
  }
  cache_->store(sig, planned, batch_names, makespan);
  return planned;
}

std::unique_ptr<Scheduler> make_cached_scheduler(
    const std::string& name, std::uint64_t seed,
    std::shared_ptr<PlanCache> cache) {
  auto inner = make_scheduler(name, seed);
  if (inner == nullptr) return nullptr;
  if (cache == nullptr) return inner;
  return std::make_unique<CachingScheduler>(std::move(inner),
                                            std::move(cache), name, seed);
}

}  // namespace corun::sched
