// Memoized plan cache: deterministic reuse of scheduling results.
//
// The cache maps a request's canonical signature (signature.hpp) to the
// schedule that request produced, stored in the by-name CSV form so a hit
// can be remapped onto any batch ordering of the same job set. Two tiers:
//
//   - an in-memory LRU tier (always on) bounded by `capacity` entries,
//     with strictly deterministic eviction order — least recently touched
//     first, insertion order breaking nothing because every touch is a
//     single-threaded list splice under the mutex;
//   - an optional persistent tier: one CSV file per entry under `dir`,
//     named by the 64-bit FNV-1a of the canonical signature and carrying
//     the full signature for verification, so a hash collision or a stale
//     artifact can never alias to a wrong plan. Files use the repo-wide
//     %.17g convention and round-trip exactly.
//
// Exact hits return the cached schedule without invoking the wrapped
// search. Near hits — same family (scheduler + model artifacts) with a
// different cap, or a cached superset of the requested job set — do not
// short-circuit the search; they donate their *schedule* as a warm-start
// candidate. Branch-and-bound re-encodes the donor into its own leaf
// space (placement kept, order and levels rebuilt for the current cap)
// and seeds its incumbent with the re-encoded makespan, so pruning starts
// tight instead of from the heuristic seed alone; the donor's raw
// makespan is never used, because a refined or differently-capped donor
// can undercut every leaf the search enumerates. Warm starts tighten only
// the incumbent *value*, never replace the returned schedule — behaviour
// stays byte-identical to a cold search whenever the search runs to
// completion, which the hint itself guarantees by disabling warm starts
// when the node budget could bind (see branch_and_bound.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/core/sched/plan_cache/signature.hpp"
#include "corun/core/sched/schedule.hpp"

namespace corun::sched {

struct PlanCacheConfig {
  std::size_t capacity = 512;  ///< in-memory entries before LRU eviction
  std::string dir;             ///< persistent tier directory ("" = off)
};

/// Monotonic counters; `snapshot()` them around a phase to attribute
/// activity (the cache may be shared across runs).
struct PlanCacheStats {
  std::uint64_t hits = 0;         ///< exact hits (search skipped)
  std::uint64_t misses = 0;       ///< neither tier had the exact entry
  std::uint64_t warm_hits = 0;    ///< near hit donated a warm-start seed
  std::uint64_t evictions = 0;    ///< LRU evictions from the memory tier
  std::uint64_t disk_hits = 0;    ///< exact hits served by the disk tier
  std::uint64_t stores = 0;       ///< entries written
  std::uint64_t io_failures = 0;  ///< unreadable/unwritable tier files
};

/// A near hit: a cached schedule covering (at least) the requested job set,
/// restricted to it and remapped to the requesting batch's indices.
struct WarmStartCandidate {
  Schedule schedule;
  Seconds cached_makespan = 0.0;  ///< under the *cached* context; advisory
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config);

  /// Parses a --plan-cache / CORUN_PLAN_CACHE spec: "off" (returns null),
  /// "mem", "mem:<capacity>", or "dir:<path>" (memory tier + persistence
  /// under <path>, created if missing). Fails on anything else.
  [[nodiscard]] static Expected<std::shared_ptr<PlanCache>> from_spec(
      const std::string& spec);

  /// Exact lookup. On a hit the stored by-name schedule is resolved against
  /// `batch_names` (the requesting batch's instance names, in batch order)
  /// and validated; returns nullopt on a miss. Counts hits/misses.
  [[nodiscard]] std::optional<Schedule> lookup(
      const PlanSignature& sig, const std::vector<std::string>& batch_names);

  /// Near lookup for warm starts: the most recently stored family entry
  /// whose job set contains every requested name (a different cap, or a
  /// superset batch). Returns the restricted, remapped schedule. Does not
  /// count as a hit or miss; counts warm_hits when it yields a candidate.
  [[nodiscard]] std::optional<WarmStartCandidate> near_lookup(
      const PlanSignature& sig, const std::vector<std::string>& batch_names);

  /// Records a planning result. `makespan` is the schedule's predicted
  /// makespan under the request's own context.
  void store(const PlanSignature& sig, const Schedule& schedule,
             const std::vector<std::string>& batch_names, Seconds makespan);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const PlanCacheConfig& config() const noexcept {
    return config_;
  }

  /// Keys currently in the memory tier, least recently used first —
  /// exposes the eviction order for the determinism tests.
  [[nodiscard]] std::vector<std::string> lru_keys() const;

 private:
  struct Entry {
    std::string canonical;
    std::string family;
    std::vector<std::string> job_names;  ///< sorted
    std::string schedule_csv;            ///< by-name serialization
    Seconds makespan = 0.0;
  };

  /// Inserts (or refreshes) an entry at the MRU end, evicting if needed.
  /// Caller holds the mutex.
  void insert_locked(Entry entry);
  [[nodiscard]] std::optional<Entry> load_from_disk_locked(
      const PlanSignature& sig);
  void save_to_disk_locked(const Entry& entry, std::uint64_t hash);
  [[nodiscard]] std::string entry_path(std::uint64_t hash) const;

  PlanCacheConfig config_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = least recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

/// Serializes one cache entry to its persistent CSV form / parses it back.
/// Exposed for the round-trip tests. Schema:
///   sig,<canonical>
///   family,<family>
///   makespan,<%.17g>
///   jobs,<name>,<name>,...
/// followed by the schedule_to_csv rows (by instance name).
[[nodiscard]] std::string plan_cache_entry_to_csv(
    const std::string& canonical, const std::string& family,
    const std::vector<std::string>& job_names, const std::string& schedule_csv,
    Seconds makespan);

}  // namespace corun::sched
