// Memoized plan cache: deterministic reuse of scheduling results.
//
// The cache maps a request's canonical signature (signature.hpp) to the
// schedule that request produced, stored in the by-name CSV form so a hit
// can be remapped onto any batch ordering of the same job set. Two tiers:
//
//   - an in-memory LRU tier (always on), **sharded by signature family**:
//     the family hash selects one of `shards` independent shards, each with
//     its own mutex, LRU list, index, and atomic counters, so concurrent
//     requests from a serving loop only contend when they share a family.
//     Entries of one family always colocate in one shard — the invariant
//     near-hit scans rely on. Each shard holds up to `capacity` entries
//     before evicting, least recently touched first; eviction order within
//     a shard is strictly deterministic because it depends only on that
//     shard's own operation sequence, never on cross-shard interleaving;
//   - an optional persistent tier: one CSV file per entry under `dir`,
//     named by the 64-bit FNV-1a of the canonical signature and carrying
//     the full signature for verification, so a hash collision or a stale
//     artifact can never alias to a wrong plan. Files use the repo-wide
//     %.17g convention and round-trip exactly.
//
// Exact hits return the cached schedule without invoking the wrapped
// search. Near hits — same family (scheduler + model artifacts) with a
// different cap, or a cached superset of the requested job set — do not
// short-circuit the search; they donate their *schedule* as a warm-start
// candidate. Branch-and-bound re-encodes the donor into its own leaf
// space (placement kept, order and levels rebuilt for the current cap)
// and seeds its incumbent with the re-encoded makespan, so pruning starts
// tight instead of from the heuristic seed alone; the donor's raw
// makespan is never used, because a refined or differently-capped donor
// can undercut every leaf the search enumerates. Warm starts tighten only
// the incumbent *value*, never replace the returned schedule — behaviour
// stays byte-identical to a cold search whenever the search runs to
// completion, which the hint itself guarantees by disabling warm starts
// when the node budget could bind (see branch_and_bound.cpp).
//
// Thread safety: every public method is safe to call concurrently. The
// stats counters are atomics updated with relaxed ordering — `stats()`
// may be called from any thread while other threads mutate a shard under
// its own lock, and each counter read is an exact monotonic snapshot
// (diffing two snapshots around a single-threaded phase attributes that
// phase's activity exactly; counters are monotonic, so diffs never go
// negative even when other threads advance them concurrently).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/core/sched/plan_cache/signature.hpp"
#include "corun/core/sched/schedule.hpp"

namespace corun::sched {

struct PlanCacheConfig {
  std::size_t capacity = 512;  ///< per-shard entries before LRU eviction
  std::string dir;             ///< persistent tier directory ("" = off)
  std::size_t shards = 8;      ///< per-family-hash shard count
};

/// Monotonic counters; `snapshot()` them around a phase to attribute
/// activity (the cache may be shared across runs). A plain value type —
/// the cache keeps the live counters in per-shard atomics and `stats()`
/// aggregates them into this snapshot form.
struct PlanCacheStats {
  std::uint64_t hits = 0;         ///< exact hits (search skipped)
  std::uint64_t misses = 0;       ///< neither tier had the exact entry
  std::uint64_t warm_hits = 0;    ///< near hit donated a warm-start seed
  std::uint64_t evictions = 0;    ///< LRU evictions from the memory tier
  std::uint64_t disk_hits = 0;    ///< exact hits served by the disk tier
  std::uint64_t stores = 0;       ///< entries written
  std::uint64_t io_failures = 0;  ///< unreadable/unwritable tier files
};

/// A near hit: a cached schedule covering (at least) the requested job set,
/// restricted to it and remapped to the requesting batch's indices.
struct WarmStartCandidate {
  Schedule schedule;
  Seconds cached_makespan = 0.0;  ///< under the *cached* context; advisory
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config);

  /// Parses a --plan-cache / CORUN_PLAN_CACHE spec: "off" (returns null),
  /// "mem", "mem:<capacity>", "mem:<capacity>:<shards>", or "dir:<path>"
  /// (memory tier + persistence under <path>, created if missing). Fails
  /// on anything else.
  [[nodiscard]] static Expected<std::shared_ptr<PlanCache>> from_spec(
      const std::string& spec);

  /// Exact lookup. On a hit the stored by-name schedule is resolved against
  /// `batch_names` (the requesting batch's instance names, in batch order)
  /// and validated; returns nullopt on a miss. Counts hits/misses. The CSV
  /// parse happens outside the shard lock, so concurrent hits on one shard
  /// only serialize on the index probe and LRU splice.
  [[nodiscard]] std::optional<Schedule> lookup(
      const PlanSignature& sig, const std::vector<std::string>& batch_names);

  /// Near lookup for warm starts: the most recently stored family entry
  /// whose job set contains every requested name (a different cap, or a
  /// superset batch). Returns the restricted, remapped schedule. Does not
  /// count as a hit or miss; counts warm_hits when it yields a candidate.
  [[nodiscard]] std::optional<WarmStartCandidate> near_lookup(
      const PlanSignature& sig, const std::vector<std::string>& batch_names);

  /// Records a planning result. `makespan` is the schedule's predicted
  /// makespan under the request's own context.
  void store(const PlanSignature& sig, const Schedule& schedule,
             const std::vector<std::string>& batch_names, Seconds makespan);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const PlanCacheConfig& config() const noexcept {
    return config_;
  }

  /// The shard a signature family maps to: `family_hash % shards`. Exposed
  /// so tests (and capacity planning) can predict shard placement.
  [[nodiscard]] std::size_t shard_index(
      std::uint64_t family_hash) const noexcept {
    return static_cast<std::size_t>(family_hash % config_.shards);
  }

  /// Keys currently in the memory tier: shards in index order, each
  /// least-recently-used first — exposes the per-shard eviction order for
  /// the determinism tests.
  [[nodiscard]] std::vector<std::string> lru_keys() const;

 private:
  struct Entry {
    std::string canonical;
    std::string family;
    std::vector<std::string> job_names;  ///< sorted
    std::string schedule_csv;            ///< by-name serialization
    Seconds makespan = 0.0;
  };

  /// Live counters for one shard. Relaxed ordering everywhere: each counter
  /// is an independent monotonic event count, never used to synchronize
  /// other memory.
  struct ShardStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> warm_hits{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> io_failures{0};
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = least recently used
    std::map<std::string, std::list<Entry>::iterator> index;
    ShardStats stats;
  };

  [[nodiscard]] Shard& shard_for(const PlanSignature& sig) noexcept {
    return shards_[shard_index(sig.family_hash)];
  }

  /// Inserts (or refreshes) an entry at the MRU end, evicting if needed.
  /// Caller holds the shard's mutex.
  void insert_locked(Shard& shard, Entry entry);
  [[nodiscard]] std::optional<Entry> load_from_disk(Shard& shard,
                                                    const PlanSignature& sig);
  void save_to_disk(Shard& shard, const Entry& entry, std::uint64_t hash);
  [[nodiscard]] std::string entry_path(std::uint64_t hash) const;

  PlanCacheConfig config_;
  std::vector<Shard> shards_;
};

/// Serializes one cache entry to its persistent CSV form / parses it back.
/// Exposed for the round-trip tests. Schema:
///   sig,<canonical>
///   family,<family>
///   makespan,<%.17g>
///   jobs,<name>,<name>,...
/// followed by the schedule_to_csv rows (by instance name).
[[nodiscard]] std::string plan_cache_entry_to_csv(
    const std::string& canonical, const std::string& family,
    const std::vector<std::string>& job_names, const std::string& schedule_csv,
    Seconds makespan);

}  // namespace corun::sched
