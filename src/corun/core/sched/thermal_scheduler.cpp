#include "corun/core/sched/thermal_scheduler.hpp"

#include <algorithm>
#include <cstddef>

namespace corun::sched {

namespace {

/// Sorts a device queue by heat and deals it out hottest, coolest,
/// 2nd-hottest, 2nd-coolest, ... (or the mirror image when `lead_hot` is
/// false). The multiset of (job, level) entries is preserved, only the
/// order changes.
std::vector<ScheduledJob> heat_spaced(const SchedulerContext& ctx,
                                      const std::vector<ScheduledJob>& queue,
                                      sim::DeviceKind device, bool lead_hot) {
  std::vector<ScheduledJob> sorted = queue;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const ScheduledJob& a, const ScheduledJob& b) {
                     const double ha = ThermalAwareScheduler::heat(
                         ctx, a.job, device, a.level);
                     const double hb = ThermalAwareScheduler::heat(
                         ctx, b.job, device, b.level);
                     if (ha != hb) return ha > hb;
                     return a.job < b.job;
                   });
  std::vector<ScheduledJob> out;
  out.reserve(sorted.size());
  std::size_t hot = 0;
  std::size_t cool = sorted.size();
  bool take_hot = lead_hot;
  while (hot < cool) {
    if (take_hot) {
      out.push_back(sorted[hot++]);
    } else {
      out.push_back(sorted[--cool]);
    }
    take_hot = !take_hot;
  }
  return out;
}

}  // namespace

ThermalAwareScheduler::ThermalAwareScheduler(HcsOptions options)
    : base_(options) {}

double ThermalAwareScheduler::heat(const SchedulerContext& ctx,
                                   std::size_t job, sim::DeviceKind device,
                                   sim::FreqLevel level) {
  return ctx.model().standalone_power(ctx.job_name(job), device, level);
}

Schedule ThermalAwareScheduler::plan(const SchedulerContext& ctx) {
  Schedule schedule = base_.plan(ctx);
  // HCS never emits the shared/batch-launch semantics, but stay defensive:
  // those orders are load balancing, not per-device sequences — reordering
  // them would change which device runs what.
  if (schedule.shared_queue || schedule.cpu_batch_launch) return schedule;
  // The CPU leads hot where the GPU leads cool: position k never pairs two
  // hot jobs, and within each queue the alternation leaves package-cooling
  // gaps between the heat pulses.
  schedule.cpu =
      heat_spaced(ctx, schedule.cpu, sim::DeviceKind::kCpu, /*lead_hot=*/true);
  schedule.gpu =
      heat_spaced(ctx, schedule.gpu, sim::DeviceKind::kGpu, /*lead_hot=*/false);
  return schedule;
}

}  // namespace corun::sched
