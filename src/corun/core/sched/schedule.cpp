#include "corun/core/sched/schedule.hpp"

#include <ostream>
#include <sstream>
#include <vector>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

void Schedule::validate(std::size_t batch_size) const {
  if (shared_queue) {
    CORUN_CHECK_MSG(cpu.empty() && gpu.empty(),
                    "shared-queue schedule must not also use per-device lists");
  } else {
    CORUN_CHECK_MSG(shared.empty(),
                    "per-device schedule must not carry a shared queue");
  }
  std::vector<int> seen(batch_size, 0);
  auto mark = [&](std::size_t job) {
    CORUN_CHECK_MSG(job < batch_size, "schedule references job out of range");
    ++seen[job];
  };
  for (const ScheduledJob& j : cpu) mark(j.job);
  for (const ScheduledJob& j : gpu) mark(j.job);
  for (const ScheduledJob& j : shared) mark(j.job);
  for (const SoloJob& j : solo) mark(j.job);
  for (std::size_t i = 0; i < batch_size; ++i) {
    CORUN_CHECK_MSG(seen[i] == 1, "job " + std::to_string(i) +
                                      " scheduled " + std::to_string(seen[i]) +
                                      " times (expected exactly once)");
  }
}

std::string Schedule::to_string(
    const std::vector<std::string>& job_names) const {
  auto name = [&](std::size_t job) {
    return job < job_names.size() ? job_names[job]
                                  : "#" + std::to_string(job);
  };
  std::ostringstream oss;
  if (shared_queue) {
    oss << "shared:";
    for (const ScheduledJob& j : shared) {
      oss << ' ' << name(j.job);
    }
    return oss.str();
  }
  oss << "CPU:";
  for (const ScheduledJob& j : cpu) {
    oss << ' ' << name(j.job) << "@L" << j.level;
  }
  if (cpu_batch_launch) oss << " (batch launch)";
  oss << " | GPU:";
  for (const ScheduledJob& j : gpu) {
    oss << ' ' << name(j.job) << "@L" << j.level;
  }
  if (!solo.empty()) {
    oss << " | solo:";
    for (const SoloJob& j : solo) {
      oss << ' ' << name(j.job) << '/'
          << sim::device_name(j.device) << "@L" << j.level;
    }
  }
  return oss.str();
}

const workload::Batch& SchedulerContext::jobs() const {
  CORUN_CHECK(batch != nullptr);
  return *batch;
}

const model::CoRunPredictor& SchedulerContext::model() const {
  CORUN_CHECK(predictor != nullptr);
  return *predictor;
}

std::string SchedulerContext::job_name(std::size_t i) const {
  return jobs().job(i).instance_name;
}

std::vector<std::string> SchedulerContext::job_names() const {
  std::vector<std::string> names;
  names.reserve(jobs().size());
  for (const workload::BatchJob& j : jobs().jobs()) {
    names.push_back(j.instance_name);
  }
  return names;
}

void schedule_to_csv(const Schedule& schedule,
                     const std::vector<std::string>& job_names,
                     std::ostream& out) {
  schedule.validate(job_names.size());
  CsvWriter writer(out);
  writer.write_row({"flags", schedule.cpu_batch_launch ? "1" : "0",
                    schedule.shared_queue ? "1" : "0",
                    schedule.model_dvfs ? "1" : "0"});
  auto emit = [&](const char* section, std::size_t pos, std::size_t job,
                  sim::FreqLevel level, const char* device) {
    writer.write_row({"entry", section, std::to_string(pos), job_names[job],
                      std::to_string(level), device});
  };
  for (std::size_t i = 0; i < schedule.cpu.size(); ++i) {
    emit("cpu", i, schedule.cpu[i].job, schedule.cpu[i].level, "-");
  }
  for (std::size_t i = 0; i < schedule.gpu.size(); ++i) {
    emit("gpu", i, schedule.gpu[i].job, schedule.gpu[i].level, "-");
  }
  for (std::size_t i = 0; i < schedule.shared.size(); ++i) {
    emit("shared", i, schedule.shared[i].job, schedule.shared[i].level, "-");
  }
  for (std::size_t i = 0; i < schedule.solo.size(); ++i) {
    emit("solo", i, schedule.solo[i].job, schedule.solo[i].level,
         sim::device_name(schedule.solo[i].device));
  }
}

Expected<Schedule> schedule_from_csv(const std::string& text,
                                     const std::vector<std::string>& job_names) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  auto job_index = [&](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < job_names.size(); ++i) {
      if (job_names[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };

  Schedule schedule;
  bool flags_seen = false;
  for (const auto& row : rows.value()) {
    if (row.empty()) continue;
    if (row[0] == "flags") {
      if (row.size() != 4) return fail("schedule CSV: flags row arity != 4", ErrorCategory::kParse);
      schedule.cpu_batch_launch = row[1] == "1";
      schedule.shared_queue = row[2] == "1";
      schedule.model_dvfs = row[3] == "1";
      flags_seen = true;
      continue;
    }
    if (row[0] != "entry") return fail("schedule CSV: unknown row '" + row[0] + "'", ErrorCategory::kParse);
    if (row.size() != 6) return fail("schedule CSV: entry row arity != 6", ErrorCategory::kParse);
    const std::ptrdiff_t job = job_index(row[3]);
    if (job < 0) return fail("schedule CSV: unknown job '" + row[3] + "'", ErrorCategory::kNotFound);
    int level = 0;
    try {
      level = std::stoi(row[4]);
    } catch (const std::exception&) {
      return fail("schedule CSV: bad level '" + row[4] + "'", ErrorCategory::kParse);
    }
    const std::size_t j = static_cast<std::size_t>(job);
    if (row[1] == "cpu") {
      schedule.cpu.push_back({j, level});
    } else if (row[1] == "gpu") {
      schedule.gpu.push_back({j, level});
    } else if (row[1] == "shared") {
      schedule.shared.push_back({j, level});
    } else if (row[1] == "solo") {
      const sim::DeviceKind device =
          row[5] == "CPU" ? sim::DeviceKind::kCpu : sim::DeviceKind::kGpu;
      schedule.solo.push_back({j, device, level});
    } else {
      return fail("schedule CSV: unknown section '" + row[1] + "'", ErrorCategory::kParse);
    }
  }
  if (!flags_seen) return fail("schedule CSV: missing flags row", ErrorCategory::kParse);
  try {
    schedule.validate(job_names.size());
  } catch (const ContractViolation& e) {
    return fail(std::string("schedule CSV invalid: ") + e.what(), ErrorCategory::kParse);
  }
  return schedule;
}

}  // namespace corun::sched
