// Thermal-aware scheduling variant (ROADMAP item 4; Dev et al.,
// arXiv:1808.09651): on an integrated die the two domains share one heat
// spreader, so co-locating the *hottest* CPU job with the hottest GPU job
// concentrates dissipation and trips the throttle governor that the plain
// schedulers never see (the predictor is power-only).
//
// The variant keeps HCS's placement and frequency decisions — device
// assignment and per-job levels are untouched, so the schedule stays valid
// and cap-feasible — and re-orders each device queue by predicted heat
// (standalone power at the assigned level):
//
//  - across devices, the queues run anti-correlated: the CPU order leads
//    with its hottest job where the GPU order leads with its coolest, so no
//    queue position pairs two hot jobs;
//  - within a device, hot and cool jobs alternate (hottest, coolest,
//    2nd-hottest, ...), spacing the heat pulses across time so the slow
//    package node can drain between them instead of ratcheting up.
//
// Purely deterministic: ties break on batch index, no RNG.
#pragma once

#include <vector>

#include "corun/core/sched/hcs.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

class ThermalAwareScheduler : public Scheduler {
 public:
  explicit ThermalAwareScheduler(HcsOptions options = {});

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;

  [[nodiscard]] std::string name() const override { return "HCS+thermal"; }

  /// The heat proxy: predicted standalone power of the job on `device` at
  /// `level` — what the job dumps into its RC node while it runs. Exposed
  /// for the ordering tests.
  [[nodiscard]] static double heat(const SchedulerContext& ctx,
                                   std::size_t job, sim::DeviceKind device,
                                   sim::FreqLevel level);

 private:
  HcsScheduler base_;
};

}  // namespace corun::sched
