// Branch-and-bound co-schedule search.
//
// The optimal co-scheduling problem is NP-hard (Sec. IV), and the paper
// positions A*-style search (Tian et al.) as the exact-but-expensive
// alternative its heuristic replaces. This solver makes that comparison
// concrete: a breadth-first fan-out into independent subtrees, then
// depth-first construction of the two device sequences over an incremental
// path cursor with two optimality-preserving pruning rules (see
// docs/search.md for the full anatomy):
//
//   - bound pruning against IncrementalBound: the fractional residual-load
//     relaxation and the power-cap occupancy relaxation, maintained with
//     O(1) push/pop per placement, floored by the historical load bound
//     max(L_cpu, L_gpu, (L_cpu + L_gpu + R) / 2);
//   - equivalence dominance: consecutive jobs with identical profile
//     digests (a same-class index run) are interchangeable, so only the
//     canonical GPU-before-CPU placement pattern within each run is
//     explored, and frontier subtrees whose prefixes are within-run
//     device permutations of an earlier subtree are skipped outright.
//
// Leaves are scored with the full analytic evaluator (model-driven DVFS,
// degradations, partial overlap). The search enumerates placements (2^n
// device assignments); per-device order is then polished by the
// Sec. IV-A.3 local refinement, since placement dominates the makespan
// while order is a local property. Both pruning rules preserve the exact
// schedule the unpruned search returns — byte-identically, at any --jobs
// count — which the `strong_bound`/`dominance` toggles exist to pin:
// with both off, the search reproduces the historical bound and node
// accounting bit-for-bit (the equivalence-sweep tests and the node
// benchmark compare the two modes).
//
// Anytime behaviour: the search is seeded with the HCS+ schedule as the
// incumbent and respects a node budget, so it degrades gracefully into
// "HCS+ or better" on large batches.
#pragma once

#include <cstddef>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

struct BranchAndBoundOptions {
  std::size_t max_jobs = 12;        ///< hard safety limit
  std::size_t node_budget = 200000; ///< DFS nodes before settling
  bool strong_bound = true;  ///< IncrementalBound in the subtree search
  bool dominance = true;     ///< equivalence dominance in the subtree search
  /// Evaluate leaves through the predictor's dense analytic tables
  /// (PredictorOptions::analytic_tables). The tables return byte-identical
  /// values, so this never changes the planned schedule; turning it off
  /// makes the search query the legacy on-demand path — the A/B switch the
  /// equivalence tests and the backend fidelity bench pin the identity with.
  bool analytic_eval = true;
};

class BranchAndBoundScheduler : public Scheduler {
 public:
  explicit BranchAndBoundScheduler(BranchAndBoundOptions options = {});

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "BnB"; }

  /// Search statistics of the last plan() call.
  [[nodiscard]] std::size_t nodes_visited() const noexcept { return nodes_; }
  /// Total prunes: bound prunes + dominance prunes.
  [[nodiscard]] std::size_t nodes_pruned() const noexcept { return pruned_; }
  /// Nodes cut by the admissible bound. Prunes at entered nodes count as
  /// visited (like the historical search); whole subtrees skipped by the
  /// root gate are never entered and count here only.
  [[nodiscard]] std::size_t bound_prunes() const noexcept {
    return bound_prunes_;
  }
  /// Subtrees skipped by equivalence dominance (never visited or counted
  /// in nodes_visited — the canonical twin covers them).
  [[nodiscard]] std::size_t dominance_prunes() const noexcept {
    return dominance_prunes_;
  }
  [[nodiscard]] std::size_t leaves_evaluated() const noexcept {
    return leaves_;
  }
  /// Times a leaf strictly improved the shared incumbent bound.
  [[nodiscard]] std::size_t incumbent_updates() const noexcept {
    return incumbent_updates_;
  }
  /// True when the last plan() stopped on its node budget. A truncated
  /// search still returns a valid "HCS+ or better" schedule, but which
  /// leaves it saw depends on task interleaving, so the byte-identity
  /// guarantees (--jobs, plan cache on/off) are scoped to runs where this
  /// stays false — which always holds at the default options, whose
  /// budget exceeds the 2^(max_jobs+1)-1 node full tree.
  [[nodiscard]] bool exhausted_budget() const noexcept {
    return budget_exhausted_;
  }
  /// True when the last plan() accepted a SchedulerContext incumbent_hint
  /// (plan-cache warm start or dynamic-runtime plan repair): the donor
  /// mapped into the search's leaf space and the node budget provably
  /// could not bind.
  [[nodiscard]] bool warm_started() const noexcept { return warm_started_; }
  /// True when the accepted hint was a dynamic-runtime plan repair
  /// (hint_kind == kRepair).
  [[nodiscard]] bool repair_hint_used() const noexcept {
    return repair_hint_used_;
  }
  /// True when a repair hint was accepted but the search found a strictly
  /// better leaf than the repaired plan's re-encoded makespan — i.e. the
  /// repair did not survive and the full B&B result was needed.
  [[nodiscard]] bool repair_fallback() const noexcept {
    return repair_fallback_;
  }

 private:
  BranchAndBoundOptions options_;
  std::size_t nodes_ = 0;
  std::size_t pruned_ = 0;
  std::size_t bound_prunes_ = 0;
  std::size_t dominance_prunes_ = 0;
  std::size_t leaves_ = 0;
  std::size_t incumbent_updates_ = 0;
  bool budget_exhausted_ = false;
  bool warm_started_ = false;
  bool repair_hint_used_ = false;
  bool repair_fallback_ = false;
};

}  // namespace corun::sched
