// Branch-and-bound co-schedule search.
//
// The optimal co-scheduling problem is NP-hard (Sec. IV), and the paper
// positions A*-style search (Tian et al.) as the exact-but-expensive
// alternative its heuristic replaces. This solver makes that comparison
// concrete: depth-first construction of the two device sequences with an
// admissible pruning bound
//     LB(partial) = max(L_cpu, L_gpu, (L_cpu + L_gpu + R) / 2)
// where L_d sums optimistic (undegraded, best cap-feasible level) times of
// jobs already placed on device d and R sums each unplaced job's best
// time on its faster device. Leaves are scored with the full analytic
// evaluator (model-driven DVFS, degradations, partial overlap). The search
// enumerates placements (2^n device assignments); per-device order is then
// polished by the Sec. IV-A.3 local refinement, since placement dominates
// the makespan while order is a local property.
//
// Anytime behaviour: the search is seeded with the HCS+ schedule as the
// incumbent and respects a node budget, so it degrades gracefully into
// "HCS+ or better" on large batches.
#pragma once

#include <cstddef>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

struct BranchAndBoundOptions {
  std::size_t max_jobs = 12;        ///< hard safety limit
  std::size_t node_budget = 200000; ///< DFS nodes before settling
};

class BranchAndBoundScheduler : public Scheduler {
 public:
  explicit BranchAndBoundScheduler(BranchAndBoundOptions options = {});

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "BnB"; }

  /// Search statistics of the last plan() call.
  [[nodiscard]] std::size_t nodes_visited() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t nodes_pruned() const noexcept { return pruned_; }
  [[nodiscard]] std::size_t leaves_evaluated() const noexcept {
    return leaves_;
  }
  /// Times a leaf strictly improved the shared incumbent bound.
  [[nodiscard]] std::size_t incumbent_updates() const noexcept {
    return incumbent_updates_;
  }
  /// True when the last plan() stopped on its node budget. A truncated
  /// search still returns a valid "HCS+ or better" schedule, but which
  /// leaves it saw depends on task interleaving, so the byte-identity
  /// guarantees (--jobs, plan cache on/off) are scoped to runs where this
  /// stays false — which always holds at the default options, whose
  /// budget exceeds the 2^(max_jobs+1)-1 node full tree.
  [[nodiscard]] bool exhausted_budget() const noexcept {
    return budget_exhausted_;
  }
  /// True when the last plan() accepted a SchedulerContext incumbent_hint
  /// (plan-cache warm start): the donor mapped into the search's leaf
  /// space and the node budget provably could not bind.
  [[nodiscard]] bool warm_started() const noexcept { return warm_started_; }

 private:
  BranchAndBoundOptions options_;
  std::size_t nodes_ = 0;
  std::size_t pruned_ = 0;
  std::size_t leaves_ = 0;
  std::size_t incumbent_updates_ = 0;
  bool budget_exhausted_ = false;
  bool warm_started_ = false;
};

}  // namespace corun::sched
