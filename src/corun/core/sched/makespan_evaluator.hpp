// Analytic schedule replay under the predictive model.
//
// Replays a schedule's two sequences as a piecewise-constant-rate system:
// between job completions the running pair degrades at the model-predicted
// rates; at each completion the next job starts and rates change (the
// general form of the Sec. IV-B partial-overlap correction). Frequency pairs
// that would break the power cap are stepped down exactly the way the
// runtime governor would, so predicted and executed schedules see the same
// operating points.
//
// This evaluator is what makes post refinement cheap: trying a swap costs a
// replay (O(n) predictor queries), not a simulation.
#pragma once

#include <optional>
#include <vector>

#include "corun/core/model/corun_predictor.hpp"
#include "corun/core/sched/schedule.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

/// One interval of the predicted timeline with a fixed running set.
struct EvalSegment {
  Seconds start = 0.0;
  Seconds end = 0.0;
  std::optional<std::size_t> cpu_job;
  std::optional<std::size_t> gpu_job;
  model::FreqPair levels;
  double cpu_degradation = 0.0;
  double gpu_degradation = 0.0;
};

struct Evaluation {
  Seconds makespan = 0.0;
  std::vector<Seconds> finish_time;  ///< indexed by batch position
  std::vector<EvalSegment> timeline;
};

class MakespanEvaluator {
 public:
  explicit MakespanEvaluator(const SchedulerContext& ctx);

  /// Predicts the full execution of `schedule` (which must validate against
  /// the context's batch). Supports per-device sequences, the solo tail and
  /// shared-queue schedules; cpu_batch_launch is approximated by appending
  /// a time-sharing penalty (the ground truth for Default comes from the
  /// simulator, not from here).
  [[nodiscard]] Evaluation evaluate(const Schedule& schedule) const;

  /// Convenience: evaluate and return only the makespan.
  [[nodiscard]] Seconds makespan(const Schedule& schedule) const;

 private:
  /// Steps the pair's levels down (mirroring the governor's policy order)
  /// until the predicted power fits the cap.
  [[nodiscard]] model::FreqPair enforce_cap(
      std::optional<std::size_t> cpu_job, std::optional<std::size_t> gpu_job,
      model::FreqPair levels) const;

  const SchedulerContext& ctx_;
};

}  // namespace corun::sched
