// Random baseline (Sec. VI-A): a fixed random order drained through a
// shared queue — whenever a processor goes idle it pulls the next job.
// Frequencies are left at maximum; the reactive governor enforces the cap
// at execution time (GPU-biased in the paper's main comparison).
#pragma once

#include <cstdint>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed);

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
};

}  // namespace corun::sched
