#include "corun/core/sched/random_scheduler.hpp"

#include <numeric>

#include "corun/common/rng.hpp"

namespace corun::sched {

RandomScheduler::RandomScheduler(std::uint64_t seed) : seed_(seed) {}

Schedule RandomScheduler::plan(const SchedulerContext& ctx) {
  const std::size_t n = ctx.jobs().size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng = Rng(seed_).fork("random-scheduler");
  rng.shuffle(order);

  Schedule schedule;
  schedule.shared_queue = true;
  const sim::FreqLevel cpu_max = ctx.model().machine().cpu_ladder.max_level();
  for (const std::size_t job : order) {
    // The level is clamped per pulling device at execution time; request the
    // larger ladder's max so both devices end up at their ceiling.
    schedule.shared.push_back({job, cpu_max});
  }
  schedule.validate(n);
  return schedule;
}

}  // namespace corun::sched
