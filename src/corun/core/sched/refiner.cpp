#include "corun/core/sched/refiner.hpp"

#include <algorithm>
#include <utility>

#include "corun/common/check.hpp"
#include "corun/common/rng.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/hcs.hpp"

namespace corun::sched {

Refiner::Refiner(RefinerOptions options) : options_(options) {
  CORUN_CHECK(options_.random_swap_samples >= 0);
  CORUN_CHECK(options_.cross_swap_samples >= 0);
}

Schedule Refiner::refine(const SchedulerContext& ctx, Schedule schedule) const {
  CORUN_TRACE_SPAN("sched", "hcs.refine");
  CORUN_CHECK_MSG(!schedule.shared_queue && !schedule.cpu_batch_launch,
                  "refinement expects a two-sequence schedule");
  const MakespanEvaluator evaluator(ctx);
  stats_ = RefinerStats{};
  Seconds best = evaluator.makespan(schedule);
  stats_.initial_makespan = best;

  // Pass 1: adjacent swaps along each device sequence.
  for (auto* seq : {&schedule.cpu, &schedule.gpu}) {
    for (std::size_t i = 0; i + 1 < seq->size(); ++i) {
      std::swap((*seq)[i], (*seq)[i + 1]);
      const Seconds makespan = evaluator.makespan(schedule);
      if (makespan < best) {
        best = makespan;
        ++stats_.adjacent_improvements;
      } else {
        std::swap((*seq)[i], (*seq)[i + 1]);
      }
    }
  }

  // Pass 2: random same-device swaps.
  Rng rng = Rng(options_.seed).fork("refiner/random");
  for (int s = 0; s < options_.random_swap_samples; ++s) {
    auto* seq = rng.chance(0.5) ? &schedule.cpu : &schedule.gpu;
    if (seq->size() < 2) continue;
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seq->size()) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seq->size()) - 1));
    if (i == j) continue;
    std::swap((*seq)[i], (*seq)[j]);
    const Seconds makespan = evaluator.makespan(schedule);
    if (makespan < best) {
      best = makespan;
      ++stats_.random_improvements;
    } else {
      std::swap((*seq)[i], (*seq)[j]);
    }
  }

  // Pass 3: random cross-device swaps. The moved jobs get their best
  // cap-feasible solo level on the destination device (the evaluator's cap
  // enforcement will still adjust per pairing).
  const model::CoRunPredictor& m = ctx.model();
  auto level_on = [&](std::size_t job, sim::DeviceKind device) {
    return m.best_solo_level(ctx.job_name(job), device, ctx.cap);
  };
  for (int s = 0; s < options_.cross_swap_samples; ++s) {
    if (schedule.cpu.empty() || schedule.gpu.empty()) break;
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(schedule.cpu.size()) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(schedule.gpu.size()) - 1));
    const auto cpu_level = level_on(schedule.gpu[j].job, sim::DeviceKind::kCpu);
    const auto gpu_level = level_on(schedule.cpu[i].job, sim::DeviceKind::kGpu);
    if (!cpu_level || !gpu_level) continue;
    const ScheduledJob old_cpu = schedule.cpu[i];
    const ScheduledJob old_gpu = schedule.gpu[j];
    schedule.cpu[i] = {old_gpu.job, *cpu_level};
    schedule.gpu[j] = {old_cpu.job, *gpu_level};
    const Seconds makespan = evaluator.makespan(schedule);
    if (makespan < best) {
      best = makespan;
      ++stats_.cross_improvements;
    } else {
      schedule.cpu[i] = old_cpu;
      schedule.gpu[j] = old_gpu;
    }
  }

  stats_.final_makespan = best;
  CORUN_TRACE_COUNTER("refiner.adjacent_improvements",
                      stats_.adjacent_improvements);
  CORUN_TRACE_COUNTER("refiner.random_improvements",
                      stats_.random_improvements);
  CORUN_TRACE_COUNTER("refiner.cross_improvements",
                      stats_.cross_improvements);
  return schedule;
}

HcsPlusScheduler::HcsPlusScheduler(RefinerOptions options)
    : options_(options) {}

Schedule HcsPlusScheduler::plan(const SchedulerContext& ctx) {
  HcsScheduler hcs;
  const Refiner refiner(options_);
  return refiner.refine(ctx, hcs.plan(ctx));
}

}  // namespace corun::sched
