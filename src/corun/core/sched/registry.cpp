#include "corun/core/sched/registry.hpp"

#include <cstdlib>
#include <string>

#include "corun/core/sched/branch_and_bound.hpp"
#include "corun/core/sched/default_scheduler.hpp"
#include "corun/core/sched/exhaustive.hpp"
#include "corun/core/sched/hcs.hpp"
#include "corun/core/sched/random_scheduler.hpp"
#include "corun/core/sched/refiner.hpp"
#include "corun/core/sched/thermal_scheduler.hpp"

namespace corun::sched {

std::vector<std::string> scheduler_names() {
  return {"hcs+", "hcs", "thermal", "default", "random", "bnb", "exhaustive"};
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "hcs+") return std::make_unique<HcsPlusScheduler>();
  if (name == "hcs") return std::make_unique<HcsScheduler>();
  if (name == "thermal") return std::make_unique<ThermalAwareScheduler>();
  if (name == "default") return std::make_unique<DefaultScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>(seed);
  if (name == "bnb") {
    // CORUN_BNB_BUDGET overrides the search's node budget — the knob the
    // CLI pipeline uses to exercise the truncated-search warning path
    // without a batch large enough to exhaust the default budget.
    BranchAndBoundOptions bo;
    if (const char* env = std::getenv("CORUN_BNB_BUDGET")) {
      try {
        bo.node_budget = std::stoull(env);
      } catch (...) {
        // Malformed values keep the default budget.
      }
    }
    return std::make_unique<BranchAndBoundScheduler>(bo);
  }
  if (name == "exhaustive") return std::make_unique<ExhaustiveScheduler>();
  return nullptr;
}

}  // namespace corun::sched
