#include "corun/core/sched/registry.hpp"

#include "corun/core/sched/branch_and_bound.hpp"
#include "corun/core/sched/default_scheduler.hpp"
#include "corun/core/sched/exhaustive.hpp"
#include "corun/core/sched/hcs.hpp"
#include "corun/core/sched/random_scheduler.hpp"
#include "corun/core/sched/refiner.hpp"

namespace corun::sched {

std::vector<std::string> scheduler_names() {
  return {"hcs+", "hcs", "default", "random", "bnb", "exhaustive"};
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "hcs+") return std::make_unique<HcsPlusScheduler>();
  if (name == "hcs") return std::make_unique<HcsScheduler>();
  if (name == "default") return std::make_unique<DefaultScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>(seed);
  if (name == "bnb") return std::make_unique<BranchAndBoundScheduler>();
  if (name == "exhaustive") return std::make_unique<ExhaustiveScheduler>();
  return nullptr;
}

}  // namespace corun::sched
