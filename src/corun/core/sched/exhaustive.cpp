#include "corun/core/sched/exhaustive.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"

namespace corun::sched {

ExhaustiveScheduler::ExhaustiveScheduler(std::size_t max_jobs)
    : max_jobs_(max_jobs) {}

Schedule ExhaustiveScheduler::plan(const SchedulerContext& ctx) {
  CORUN_TRACE_SPAN("sched", "exhaustive.plan");
  const std::size_t n = ctx.jobs().size();
  CORUN_CHECK_MSG(n <= max_jobs_,
                  "exhaustive search limited to " + std::to_string(max_jobs_) +
                      " jobs");
  const MakespanEvaluator evaluator(ctx);
  const sim::FreqLevel cpu_max = ctx.model().machine().cpu_ladder.max_level();
  const sim::FreqLevel gpu_max = ctx.model().machine().gpu_ladder.max_level();

  // Device assignments (bit set = GPU) are independent subproblems: one
  // task per mask enumerates all orders of each side serially, exactly as
  // the serial loop nest did. Per-mask winners are reduced in ascending
  // mask order with a strict improvement test, which reproduces the serial
  // first-strictly-better tie-breaking bit for bit.
  struct MaskBest {
    Seconds makespan = std::numeric_limits<Seconds>::infinity();
    Schedule schedule;
    std::size_t evaluated = 0;
  };
  const std::size_t masks = 1ull << n;
  std::vector<MaskBest> per_mask(masks);
  common::TaskPool::shared().parallel_for_index(masks, [&](std::size_t mask) {
    MaskBest local;
    std::vector<std::size_t> cpu_jobs;
    std::vector<std::size_t> gpu_jobs;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        gpu_jobs.push_back(i);
      } else {
        cpu_jobs.push_back(i);
      }
    }
    std::sort(cpu_jobs.begin(), cpu_jobs.end());
    do {
      std::vector<std::size_t> gpu_perm = gpu_jobs;
      std::sort(gpu_perm.begin(), gpu_perm.end());
      do {
        Schedule candidate;
        for (const std::size_t job : cpu_jobs) {
          candidate.cpu.push_back({job, cpu_max});
        }
        for (const std::size_t job : gpu_perm) {
          candidate.gpu.push_back({job, gpu_max});
        }
        const Seconds makespan = evaluator.makespan(candidate);
        ++local.evaluated;
        if (makespan < local.makespan) {
          local.makespan = makespan;
          local.schedule = std::move(candidate);
        }
      } while (std::next_permutation(gpu_perm.begin(), gpu_perm.end()));
    } while (std::next_permutation(cpu_jobs.begin(), cpu_jobs.end()));
    per_mask[mask] = std::move(local);
  });

  evaluated_ = 0;
  Schedule best;
  Seconds best_makespan = std::numeric_limits<Seconds>::infinity();
  for (MaskBest& candidate : per_mask) {
    evaluated_ += candidate.evaluated;
    if (candidate.makespan < best_makespan) {
      best_makespan = candidate.makespan;
      best = std::move(candidate.schedule);
    }
  }

  CORUN_TRACE_COUNTER("exhaustive.evaluated", evaluated_);

  best.validate(n);
  return best;
}

}  // namespace corun::sched
