#include "corun/core/sched/exhaustive.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "corun/common/check.hpp"
#include "corun/core/sched/makespan_evaluator.hpp"

namespace corun::sched {

ExhaustiveScheduler::ExhaustiveScheduler(std::size_t max_jobs)
    : max_jobs_(max_jobs) {}

Schedule ExhaustiveScheduler::plan(const SchedulerContext& ctx) {
  const std::size_t n = ctx.jobs().size();
  CORUN_CHECK_MSG(n <= max_jobs_,
                  "exhaustive search limited to " + std::to_string(max_jobs_) +
                      " jobs");
  const MakespanEvaluator evaluator(ctx);
  const sim::FreqLevel cpu_max = ctx.model().machine().cpu_ladder.max_level();
  const sim::FreqLevel gpu_max = ctx.model().machine().gpu_ladder.max_level();

  evaluated_ = 0;
  Schedule best;
  Seconds best_makespan = std::numeric_limits<Seconds>::infinity();

  // Enumerate device assignments by bitmask (bit set = GPU), then all
  // orders of each side.
  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<std::size_t> cpu_jobs;
    std::vector<std::size_t> gpu_jobs;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        gpu_jobs.push_back(i);
      } else {
        cpu_jobs.push_back(i);
      }
    }
    std::sort(cpu_jobs.begin(), cpu_jobs.end());
    do {
      std::vector<std::size_t> gpu_perm = gpu_jobs;
      std::sort(gpu_perm.begin(), gpu_perm.end());
      do {
        Schedule candidate;
        for (const std::size_t job : cpu_jobs) {
          candidate.cpu.push_back({job, cpu_max});
        }
        for (const std::size_t job : gpu_perm) {
          candidate.gpu.push_back({job, gpu_max});
        }
        const Seconds makespan = evaluator.makespan(candidate);
        ++evaluated_;
        if (makespan < best_makespan) {
          best_makespan = makespan;
          best = std::move(candidate);
        }
      } while (std::next_permutation(gpu_perm.begin(), gpu_perm.end()));
    } while (std::next_permutation(cpu_jobs.begin(), cpu_jobs.end()));
  }

  best.validate(n);
  return best;
}

}  // namespace corun::sched
