// Scheduler registry: name -> instance, shared by the command-line tools
// and any embedding application that selects planners by configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

/// Names accepted by make_scheduler, in presentation order.
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Constructs a scheduler by name ("hcs+", "hcs", "default", "random",
/// "bnb", "exhaustive"); `seed` parameterizes the stochastic ones.
/// Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name, std::uint64_t seed = 42);

}  // namespace corun::sched
