#include "corun/core/sched/corun_theorem.hpp"

#include <algorithm>

#include "corun/common/check.hpp"

namespace corun::sched {

bool corun_beneficial(Seconds l1, double d1, Seconds l2, double d2) {
  CORUN_CHECK(l1 > 0.0 && l2 > 0.0);
  CORUN_CHECK(d1 >= 0.0 && d2 >= 0.0);
  // Order so job "a" is the one that finishes last under co-run.
  Seconds la = l1;
  double da = d1;
  Seconds lb = l2;
  if (l1 * (1.0 + d1) < l2 * (1.0 + d2)) {
    la = l2;
    da = d2;
    lb = l1;
  }
  // Makespan of the co-run is la*(1+da) (the longer job is degraded for at
  // most its whole run); sequential is la + lb. Co-run wins iff la*da < lb.
  return la * da < lb;
}

PairLengths corun_pair_lengths(Seconds l1, double d1, Seconds l2, double d2) {
  CORUN_CHECK(l1 > 0.0 && l2 > 0.0);
  CORUN_CHECK(d1 >= 0.0 && d2 >= 0.0);
  const Seconds c1 = l1 * (1.0 + d1);  // if fully overlapped
  const Seconds c2 = l2 * (1.0 + d2);
  PairLengths out;
  if (c1 <= c2) {
    // Job 1 finishes first at c1. Job 2's progress by then is c1/(1+d2)
    // standalone-seconds; the rest runs clean.
    out.first = c1;
    out.second = c1 + (l2 - c1 / (1.0 + d2));
  } else {
    out.second = c2;
    out.first = c2 + (l1 - c2 / (1.0 + d1));
  }
  return out;
}

}  // namespace corun::sched
