#include "corun/core/sched/default_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace corun::sched {

Schedule DefaultScheduler::plan(const SchedulerContext& ctx) {
  const model::CoRunPredictor& m = ctx.model();
  const std::size_t n = ctx.jobs().size();
  const sim::FreqLevel cpu_max = m.machine().cpu_ladder.max_level();
  const sim::FreqLevel gpu_max = m.machine().gpu_ladder.max_level();

  // Rank by CPU/GPU time ratio at max frequency, most GPU-leaning first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto ratio = [&](std::size_t job) {
    const std::string name = ctx.job_name(job);
    return m.standalone_time(name, sim::DeviceKind::kCpu, cpu_max) /
           m.standalone_time(name, sim::DeviceKind::kGpu, gpu_max);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ratio(a) > ratio(b); });

  // Split point minimizing the longer partition's summed standalone time.
  std::size_t best_split = 0;
  Seconds best_metric = std::numeric_limits<Seconds>::infinity();
  for (std::size_t split = 0; split <= n; ++split) {
    Seconds gpu_sum = 0.0;
    Seconds cpu_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::string name = ctx.job_name(order[k]);
      if (k < split) {
        gpu_sum += m.standalone_time(name, sim::DeviceKind::kGpu, gpu_max);
      } else {
        cpu_sum += m.standalone_time(name, sim::DeviceKind::kCpu, cpu_max);
      }
    }
    const Seconds metric = std::max(gpu_sum, cpu_sum);
    if (metric < best_metric) {
      best_metric = metric;
      best_split = split;
    }
  }

  Schedule schedule;
  schedule.cpu_batch_launch = true;
  for (std::size_t k = 0; k < n; ++k) {
    if (k < best_split) {
      schedule.gpu.push_back({order[k], gpu_max});
    } else {
      schedule.cpu.push_back({order[k], cpu_max});
    }
  }
  schedule.validate(n);
  return schedule;
}

}  // namespace corun::sched
