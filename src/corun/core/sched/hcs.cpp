#include "corun/core/sched/hcs.hpp"

#include <algorithm>
#include <limits>

#include "corun/common/check.hpp"
#include "corun/common/log.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/core/sched/corun_theorem.hpp"

namespace corun::sched {
namespace {

/// Greedy-loop bookkeeping for one device.
struct Running {
  std::optional<std::size_t> job;
  sim::FreqLevel level = 0;
  double frac = 1.0;  ///< fraction of the job still to execute
};

}  // namespace

const char* preference_name(Preference p) noexcept {
  switch (p) {
    case Preference::kCpu: return "CPU";
    case Preference::kGpu: return "GPU";
    case Preference::kNone: return "Non";
  }
  return "?";
}

HcsScheduler::HcsScheduler(HcsOptions options) : options_(options) {
  CORUN_CHECK(options_.preference_threshold >= 0.0);
}

std::optional<model::FreqPair> HcsScheduler::choose_pair(
    const SchedulerContext& ctx, const std::string& cpu_job,
    const std::string& gpu_job) const {
  return options_.min_degradation_freq
             ? ctx.model().best_pair_min_degradation(cpu_job, gpu_job, ctx.cap)
             : ctx.model().best_pair_min_makespan(cpu_job, gpu_job, ctx.cap);
}

bool HcsScheduler::pair_beneficial(const SchedulerContext& ctx, std::size_t i,
                                   std::size_t j) const {
  const model::CoRunPredictor& m = ctx.model();
  const std::string a = ctx.job_name(i);
  const std::string b = ctx.job_name(j);

  // Sequential alternative: each job solo on its best cap-feasible device.
  auto best_solo = [&](const std::string& job) {
    Seconds best = std::numeric_limits<Seconds>::infinity();
    for (const sim::DeviceKind d :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      if (m.best_solo_level(job, d, ctx.cap)) {
        best = std::min(best, m.best_solo_time(job, d, ctx.cap));
      }
    }
    return best;
  };
  const Seconds sequential = best_solo(a) + best_solo(b);

  // Co-run alternative: both placements, best cap-feasible frequency pair.
  // The theorem's conservative criterion compares the fully-degraded co-run
  // makespan (both jobs contended throughout, as in a drained-queue steady
  // state) against sequential execution — this is what lets genuinely
  // antagonistic jobs land in S_seq.
  auto corun_makespan = [&](const std::string& cpu_job,
                            const std::string& gpu_job) {
    const auto pair = choose_pair(ctx, cpu_job, gpu_job);
    if (!pair) return std::numeric_limits<Seconds>::infinity();
    const model::PairPrediction p =
        m.predict(cpu_job, pair->cpu, gpu_job, pair->gpu);
    return std::max(p.cpu_time, p.gpu_time);
  };
  const Seconds best_corun =
      std::min(corun_makespan(a, b), corun_makespan(b, a));
  return best_corun < sequential;
}

std::vector<bool> HcsScheduler::corun_partition(
    const SchedulerContext& ctx) const {
  const std::size_t n = ctx.jobs().size();
  std::vector<bool> in_corun(n, true);
  if (!options_.use_theorem_partition || n < 2) {
    return in_corun;
  }
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < n && !any; ++j) {
      if (j == i) continue;
      any = pair_beneficial(ctx, i, j);
    }
    in_corun[i] = any;
  }
  return in_corun;
}

Preference HcsScheduler::categorize(const SchedulerContext& ctx,
                                    std::size_t job) const {
  const model::CoRunPredictor& m = ctx.model();
  const std::string name = ctx.job_name(job);
  const auto cpu_level = m.best_solo_level(name, sim::DeviceKind::kCpu, ctx.cap);
  const auto gpu_level = m.best_solo_level(name, sim::DeviceKind::kGpu, ctx.cap);
  CORUN_CHECK_MSG(cpu_level || gpu_level,
                  "job " + name + " cannot run under the cap on any device");
  if (!cpu_level) return Preference::kGpu;
  if (!gpu_level) return Preference::kCpu;

  const Seconds t_cpu = m.standalone_time(name, sim::DeviceKind::kCpu, *cpu_level);
  const Seconds t_gpu = m.standalone_time(name, sim::DeviceKind::kGpu, *gpu_level);
  const Seconds diff = std::abs(t_cpu - t_gpu) / std::max(t_cpu, t_gpu);
  if (diff <= options_.preference_threshold) return Preference::kNone;
  return t_cpu < t_gpu ? Preference::kCpu : Preference::kGpu;
}

std::string HcsTrace::to_string(
    const std::vector<std::string>& job_names) const {
  auto name = [&](std::size_t job) {
    return job < job_names.size() ? job_names[job] : "#" + std::to_string(job);
  };
  std::ostringstream oss;
  oss << "S_co:";
  for (std::size_t i = 0; i < in_corun.size(); ++i) {
    if (in_corun[i]) oss << ' ' << name(i);
  }
  oss << "\nS_seq:";
  for (std::size_t i = 0; i < in_corun.size(); ++i) {
    if (!in_corun[i]) oss << ' ' << name(i);
  }
  oss << "\npreferences:";
  for (std::size_t i = 0; i < preference.size(); ++i) {
    oss << ' ' << name(i) << '=' << preference_name(preference[i]);
  }
  oss << '\n';
  for (const PairingDecision& d : decisions) {
    oss << "t=" << d.predicted_start << "s: " << sim::device_name(d.device)
        << " <- " << name(d.job) << " (tier " << preference_name(d.tier);
    if (d.partner) {
      oss << ", vs " << name(*d.partner) << ", interference "
          << d.degradation_sum;
    } else {
      oss << ", device otherwise idle";
    }
    oss << ", L" << d.level << ")\n";
  }
  return oss.str();
}

Schedule HcsScheduler::plan(const SchedulerContext& ctx) {
  return plan_traced(ctx, nullptr);
}

Schedule HcsScheduler::plan_traced(const SchedulerContext& ctx,
                                   HcsTrace* trace) {
  CORUN_TRACE_SPAN("sched", "hcs.plan");
  const model::CoRunPredictor& m = ctx.model();
  const std::size_t n = ctx.jobs().size();
  Schedule schedule;
  if (n == 0) return schedule;

  // Step 1: theorem-based partition.
  const std::vector<bool> in_corun = corun_partition(ctx);

  // Step 2: preference categorization of the co-run set.
  std::vector<Preference> pref(n, Preference::kNone);
  std::vector<std::size_t> remaining;  // S_co members not yet placed
  for (std::size_t i = 0; i < n; ++i) {
    pref[i] = categorize(ctx, i);
    if (in_corun[i]) {
      remaining.push_back(i);
    }
  }
  if (trace != nullptr) {
    trace->in_corun = in_corun;
    trace->preference = pref;
    trace->decisions.clear();
  }
  Seconds planner_now = 0.0;

  // Step 3: greedy interference-aware placement. We track the predicted
  // progress of the current job on each device so "when a job finishes,
  // pick the least-interfering next job" resolves in predicted time order.
  Running cpu;
  Running gpu;

  auto own_pref = [](sim::DeviceKind d) {
    return d == sim::DeviceKind::kCpu ? Preference::kCpu : Preference::kGpu;
  };

  auto best_solo_time_on = [&](std::size_t job, sim::DeviceKind d) {
    const auto lvl = m.best_solo_level(ctx.job_name(job), d, ctx.cap);
    return lvl ? m.standalone_time(ctx.job_name(job), d, *lvl)
               : std::numeric_limits<Seconds>::infinity();
  };

  auto t_max = [&](std::size_t job, sim::DeviceKind d) {
    return m.standalone_time(ctx.job_name(job), d,
                             m.machine().ladder(d).max_level());
  };

  // Estimated backlog of a device in a hypothetical pairing: the pairing's
  // own job plus every unplaced job that will likely land there (preferred
  // jobs fully, non-preferred split). Drives the backlog-weighted frequency
  // split, mirroring the model-driven runtime.
  auto weighted_pair = [&](std::size_t cpu_job, std::size_t gpu_job)
      -> std::optional<model::FreqPair> {
    if (options_.min_degradation_freq) {
      return m.best_pair_min_degradation(ctx.job_name(cpu_job),
                                         ctx.job_name(gpu_job), ctx.cap);
    }
    Seconds b_cpu = t_max(cpu_job, sim::DeviceKind::kCpu);
    Seconds b_gpu = t_max(gpu_job, sim::DeviceKind::kGpu);
    for (const std::size_t k : remaining) {
      if (k == cpu_job || k == gpu_job) continue;
      if (pref[k] == Preference::kCpu) {
        b_cpu += t_max(k, sim::DeviceKind::kCpu);
      } else if (pref[k] == Preference::kGpu) {
        b_gpu += t_max(k, sim::DeviceKind::kGpu);
      } else {
        b_cpu += 0.5 * t_max(k, sim::DeviceKind::kCpu);
        b_gpu += 0.5 * t_max(k, sim::DeviceKind::kGpu);
      }
    }
    return m.best_pair_weighted(ctx.job_name(cpu_job), ctx.job_name(gpu_job),
                                ctx.cap,
                                b_cpu / t_max(cpu_job, sim::DeviceKind::kCpu),
                                b_gpu / t_max(gpu_job, sim::DeviceKind::kGpu));
  };

  // Joint prediction for a hypothetical pairing, at the jointly optimized
  // cap-feasible frequency pair — the operating point the model-driven
  // runtime will actually apply (Schedule::model_dvfs).
  auto predict_pair = [&](std::size_t cpu_job, std::size_t gpu_job)
      -> std::optional<model::PairPrediction> {
    const auto pair = weighted_pair(cpu_job, gpu_job);
    if (!pair) return std::nullopt;
    return m.predict(ctx.job_name(cpu_job), pair->cpu, ctx.job_name(gpu_job),
                     pair->gpu);
  };

  // Predicted completion of `job` here, degraded against the other device's
  // current occupant.
  auto corun_time_here = [&](std::size_t job, sim::DeviceKind d,
                             const Running& other) -> Seconds {
    if (!other.job) return best_solo_time_on(job, d);
    const bool on_cpu = d == sim::DeviceKind::kCpu;
    const auto p = on_cpu ? predict_pair(job, *other.job)
                          : predict_pair(*other.job, job);
    if (!p) return std::numeric_limits<Seconds>::infinity();
    return on_cpu ? p->cpu_time : p->gpu_time;
  };

  // Anti-starvation "steal gate": pulling a job that prefers the *other*
  // device only helps when finishing it here beats waiting for its home
  // device to drain its backlog and run it natively. Without this guard the
  // literal greedy rule parks a 60 s CPU run of a GPU-preferred job while
  // the GPU idles 20 s later — exactly the pathology the Co-Run Theorem's
  // throughput reasoning is meant to avoid.
  auto steal_is_profitable = [&](std::size_t job, sim::DeviceKind d,
                                 const Running& other) {
    const sim::DeviceKind home = sim::other_device(d);
    Seconds home_backlog = 0.0;
    if (other.job) {
      home_backlog += other.frac *
                      m.standalone_time(ctx.job_name(*other.job), home,
                                        other.level);
    }
    for (const std::size_t k : remaining) {
      if (k == job) continue;
      if (pref[k] == own_pref(home) || pref[k] == Preference::kNone) {
        home_backlog += best_solo_time_on(k, home);
      }
    }
    const Seconds wait_then_run = home_backlog + best_solo_time_on(job, home);
    return corun_time_here(job, d, other) < wait_then_run;
  };

  // Candidate selection: strongest non-empty preference tier for `device`,
  // scored by `score` (lower wins). The other-preference tier is gated.
  auto pick = [&](sim::DeviceKind device, const Running& other,
                  auto&& score) -> std::optional<std::size_t> {
    const Preference own =
        device == sim::DeviceKind::kCpu ? Preference::kCpu : Preference::kGpu;
    const Preference foreign =
        device == sim::DeviceKind::kCpu ? Preference::kGpu : Preference::kCpu;
    for (const Preference tier : {own, Preference::kNone, foreign}) {
      std::optional<std::size_t> best;
      double best_score = std::numeric_limits<double>::infinity();
      for (const std::size_t job : remaining) {
        if (pref[job] != tier) continue;
        if (tier == foreign && !steal_is_profitable(job, device, other)) {
          continue;
        }
        const double s = score(job);
        if (s < best_score) {
          best_score = s;
          best = job;
        }
      }
      if (best) return best;
    }
    return std::nullopt;
  };
  auto take = [&](std::size_t job) {
    remaining.erase(std::find(remaining.begin(), remaining.end(), job));
  };

  // Scores: "longest first" when the machine is otherwise empty (keeps
  // shorter jobs available as gap fillers), least summed degradation when
  // joining a running partner (the paper's interference rule).
  auto longest_first = [&](sim::DeviceKind device) {
    return [&, device](std::size_t job) {
      const Seconds t = best_solo_time_on(job, device);
      return t == std::numeric_limits<Seconds>::infinity() ? t : -t;
    };
  };
  auto least_interference = [&](sim::DeviceKind device, const Running& other) {
    return [&, device](std::size_t job) -> double {
      const bool on_cpu = device == sim::DeviceKind::kCpu;
      const auto p = on_cpu ? predict_pair(job, *other.job)
                            : predict_pair(*other.job, job);
      if (!p) return std::numeric_limits<double>::infinity();
      return p->cpu_degradation + p->gpu_degradation;
    };
  };

  // Assign `job` to `device`. The pairing's frequencies are re-optimized
  // jointly (both running levels update), matching the model-driven runtime.
  // The *stored* per-job level is the best cap-feasible solo level — only a
  // fallback, since model_dvfs re-derives operating points at execution.
  auto assign = [&](std::size_t job, sim::DeviceKind device) {
    Running& own = device == sim::DeviceKind::kCpu ? cpu : gpu;
    Running& other = device == sim::DeviceKind::kCpu ? gpu : cpu;
    take(job);
    own.job = job;
    own.frac = 1.0;
    own.level = m.best_solo_level(ctx.job_name(job), device, ctx.cap).value_or(0);
    double interference = 0.0;
    if (other.job) {
      const bool on_cpu = device == sim::DeviceKind::kCpu;
      const auto pair = on_cpu ? weighted_pair(job, *other.job)
                               : weighted_pair(*other.job, job);
      if (pair) {
        own.level = on_cpu ? pair->cpu : pair->gpu;
        other.level = on_cpu ? pair->gpu : pair->cpu;
      }
      if (const auto p = on_cpu ? predict_pair(job, *other.job)
                                : predict_pair(*other.job, job)) {
        interference = p->cpu_degradation + p->gpu_degradation;
      }
    }
    auto& seq = device == sim::DeviceKind::kCpu ? schedule.cpu : schedule.gpu;
    const sim::FreqLevel stored =
        m.best_solo_level(ctx.job_name(job), device, ctx.cap).value_or(0);
    seq.push_back({job, stored});
    CORUN_TRACE_COUNTER("hcs.placements", 1);
    if (trace != nullptr) {
      trace->decisions.push_back(PairingDecision{
          .device = device,
          .job = job,
          .tier = pref[job],
          .partner = other.job,
          .degradation_sum = interference,
          .level = own.level,
          .predicted_start = planner_now});
    }
  };

  // Seed the GPU with the longest job in its tier order (the paper seeds
  // with the longest GPU-preferred job), then the least-interfering CPU
  // partner with a jointly chosen frequency pair.
  if (const auto seed =
          pick(sim::DeviceKind::kGpu, cpu, longest_first(sim::DeviceKind::kGpu))) {
    assign(*seed, sim::DeviceKind::kGpu);
  }
  if (gpu.job) {
    if (const auto partner = pick(sim::DeviceKind::kCpu, gpu,
                                  least_interference(sim::DeviceKind::kCpu, gpu))) {
      assign(*partner, sim::DeviceKind::kCpu);
    }
  } else if (const auto seed = pick(sim::DeviceKind::kCpu, gpu,
                                    longest_first(sim::DeviceKind::kCpu))) {
    // Degenerate batch with no GPU-eligible candidates: seed the CPU.
    assign(*seed, sim::DeviceKind::kCpu);
  }

  // Greedy loop: advance predicted time to the next completion, refill the
  // freed device, and reconsider an idle device whenever conditions change.
  while (cpu.job || gpu.job) {
    double d_cpu = 0.0;
    double d_gpu = 0.0;
    Seconds t_cpu = 0.0;
    Seconds t_gpu = 0.0;
    if (cpu.job && gpu.job) {
      const model::PairPrediction p =
          predict_pair(*cpu.job, *gpu.job)
              .value_or(m.predict(ctx.job_name(*cpu.job), cpu.level,
                                  ctx.job_name(*gpu.job), gpu.level));
      d_cpu = p.cpu_degradation;
      d_gpu = p.gpu_degradation;
      t_cpu = p.cpu_solo_time;
      t_gpu = p.gpu_solo_time;
    } else if (cpu.job) {
      // Alone: the model-driven runtime raises the survivor to its best
      // cap-feasible solo level.
      t_cpu = best_solo_time_on(*cpu.job, sim::DeviceKind::kCpu);
    } else if (gpu.job) {
      t_gpu = best_solo_time_on(*gpu.job, sim::DeviceKind::kGpu);
    }

    const Seconds cpu_left = cpu.job
                                 ? cpu.frac * t_cpu * (1.0 + d_cpu)
                                 : std::numeric_limits<Seconds>::infinity();
    const Seconds gpu_left = gpu.job
                                 ? gpu.frac * t_gpu * (1.0 + d_gpu)
                                 : std::numeric_limits<Seconds>::infinity();
    const Seconds dt = std::min(cpu_left, gpu_left);
    if (cpu.job) cpu.frac -= dt / (t_cpu * (1.0 + d_cpu));
    if (gpu.job) gpu.frac -= dt / (t_gpu * (1.0 + d_gpu));
    planner_now += dt;

    if (cpu.job && cpu_left <= dt + 1e-12) cpu.job.reset();
    if (gpu.job && gpu_left <= dt + 1e-12) gpu.job.reset();

    // Refill any idle device; the steal gate may legitimately leave a
    // device idle while the other drains its preferred backlog.
    for (const sim::DeviceKind device :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      Running& own = device == sim::DeviceKind::kCpu ? cpu : gpu;
      Running& other = device == sim::DeviceKind::kCpu ? gpu : cpu;
      if (own.job || remaining.empty()) continue;
      const auto next =
          other.job ? pick(device, other, least_interference(device, other))
                    : pick(device, other, longest_first(device));
      if (next) assign(*next, device);
    }
    // Progress guarantee: if everything is idle but jobs remain (every
    // candidate was gated), force the best job onto its preferred device.
    if (!cpu.job && !gpu.job && !remaining.empty()) {
      const std::size_t job = remaining.front();
      const sim::DeviceKind device =
          pref[job] == Preference::kCpu ? sim::DeviceKind::kCpu
                                        : sim::DeviceKind::kGpu;
      assign(job, device);
    }
  }
  CORUN_CHECK(remaining.empty());

  // S_seq: solo execution on the best device, longest first.
  std::vector<std::size_t> solo_jobs;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_corun[i]) solo_jobs.push_back(i);
  }
  std::vector<SoloJob> solo;
  for (const std::size_t job : solo_jobs) {
    const std::string name = ctx.job_name(job);
    sim::DeviceKind device = sim::DeviceKind::kCpu;
    Seconds best = std::numeric_limits<Seconds>::infinity();
    sim::FreqLevel level = 0;
    for (const sim::DeviceKind d :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      const auto lvl = m.best_solo_level(name, d, ctx.cap);
      if (!lvl) continue;
      const Seconds t = m.standalone_time(name, d, *lvl);
      if (t < best) {
        best = t;
        device = d;
        level = *lvl;
      }
    }
    solo.push_back({job, device, level});
  }
  std::sort(solo.begin(), solo.end(), [&](const SoloJob& a, const SoloJob& b) {
    return m.standalone_time(ctx.job_name(a.job), a.device, a.level) >
           m.standalone_time(ctx.job_name(b.job), b.device, b.level);
  });
  schedule.solo = std::move(solo);
  schedule.model_dvfs = true;

  schedule.validate(n);
  CORUN_LOG(kDebug) << "HCS plan: " << schedule.to_string(ctx.job_names());
  return schedule;
}

}  // namespace corun::sched
