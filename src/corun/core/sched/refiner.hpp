// Post local refinement (Sec. IV-A.3) — turns HCS into HCS+.
//
// Three linear-cost passes over a schedule, each keeping a change only when
// the predicted makespan improves:
//   1. adjacent-swap sweep along each device's sequence,
//   2. random same-device swaps,
//   3. random cross-device swaps (a job moves to the other processor and is
//      re-assigned its best cap-feasible level there).
#pragma once

#include <cstdint>

#include "corun/core/sched/makespan_evaluator.hpp"
#include "corun/core/sched/schedule.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

struct RefinerOptions {
  int random_swap_samples = 32;
  int cross_swap_samples = 32;
  std::uint64_t seed = 7;
};

struct RefinerStats {
  int adjacent_improvements = 0;
  int random_improvements = 0;
  int cross_improvements = 0;
  Seconds initial_makespan = 0.0;
  Seconds final_makespan = 0.0;
};

class Refiner {
 public:
  explicit Refiner(RefinerOptions options = {});

  /// Refines `schedule` in place semantics-free (returns the improved copy).
  [[nodiscard]] Schedule refine(const SchedulerContext& ctx,
                                Schedule schedule) const;

  /// Stats of the most recent refine() call.
  [[nodiscard]] const RefinerStats& last_stats() const noexcept {
    return stats_;
  }

 private:
  RefinerOptions options_;
  mutable RefinerStats stats_;
};

/// Convenience scheduler wrapper: HCS followed by refinement ("HCS+").
class HcsPlusScheduler : public Scheduler {
 public:
  explicit HcsPlusScheduler(RefinerOptions options = {});
  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "HCS+"; }

 private:
  RefinerOptions options_;
};

}  // namespace corun::sched
