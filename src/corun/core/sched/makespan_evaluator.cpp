#include "corun/core/sched/makespan_evaluator.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "corun/common/check.hpp"

namespace corun::sched {
namespace {

constexpr double kDoneEps = 1e-12;

/// Running state of one device during replay.
struct DeviceState {
  std::optional<std::size_t> job;
  sim::FreqLevel level = 0;
  double frac = 0.0;  ///< fraction of the job still to execute
};

}  // namespace

MakespanEvaluator::MakespanEvaluator(const SchedulerContext& ctx) : ctx_(ctx) {
  CORUN_CHECK(ctx.batch != nullptr && ctx.predictor != nullptr);
}

model::FreqPair MakespanEvaluator::enforce_cap(
    std::optional<std::size_t> cpu_job, std::optional<std::size_t> gpu_job,
    model::FreqPair levels) const {
  if (!ctx_.cap) return levels;
  const model::CoRunPredictor& m = ctx_.model();
  const Watts cap = *ctx_.cap;
  auto power = [&] {
    if (cpu_job && gpu_job) {
      return m.predict_power(ctx_.job_name(*cpu_job), levels.cpu,
                             ctx_.job_name(*gpu_job), levels.gpu);
    }
    if (cpu_job) {
      return m.standalone_power(ctx_.job_name(*cpu_job), sim::DeviceKind::kCpu,
                                levels.cpu);
    }
    if (gpu_job) {
      return m.standalone_power(ctx_.job_name(*gpu_job), sim::DeviceKind::kGpu,
                                levels.gpu);
    }
    return 0.0;
  };
  const bool cpu_first = ctx_.policy != sim::GovernorPolicy::kCpuBiased;
  while (power() > cap) {
    if (cpu_first) {
      if (cpu_job && levels.cpu > 0) {
        --levels.cpu;
      } else if (gpu_job && levels.gpu > 0) {
        --levels.gpu;
      } else {
        break;  // already at the floor; the cap simply cannot be met
      }
    } else {
      if (gpu_job && levels.gpu > 0) {
        --levels.gpu;
      } else if (cpu_job && levels.cpu > 0) {
        --levels.cpu;
      } else {
        break;
      }
    }
  }
  return levels;
}

Evaluation MakespanEvaluator::evaluate(const Schedule& schedule) const {
  const workload::Batch& batch = ctx_.jobs();
  schedule.validate(batch.size());
  const model::CoRunPredictor& m = ctx_.model();

  Evaluation out;
  out.finish_time.assign(batch.size(), 0.0);

  // Pending queues. Shared-queue schedules feed both devices from one list.
  std::deque<ScheduledJob> cpu_pending(schedule.cpu.begin(), schedule.cpu.end());
  std::deque<ScheduledJob> gpu_pending(schedule.gpu.begin(), schedule.gpu.end());
  std::deque<ScheduledJob> shared_pending(schedule.shared.begin(),
                                          schedule.shared.end());

  // Default-baseline approximation: the whole CPU partition time-shares, so
  // each CPU job behaves as if stretched by the oversubscription overheads.
  double cpu_stretch = 1.0;
  if (schedule.cpu_batch_launch && schedule.cpu.size() > 1) {
    const auto n = static_cast<double>(schedule.cpu.size());
    const sim::MachineConfig& mc = m.machine();
    cpu_stretch = (1.0 + mc.cs_overhead * (n - 1.0)) *
                  (1.0 + 0.5 * mc.cs_locality_penalty * (n - 1.0));
  }

  auto pull = [&](sim::DeviceKind d) -> std::optional<ScheduledJob> {
    if (schedule.shared_queue) {
      if (shared_pending.empty()) return std::nullopt;
      ScheduledJob j = shared_pending.front();
      shared_pending.pop_front();
      // Shared-queue jobs carry no device-specific level choice: clamp to
      // the pulling device's ladder.
      j.level = m.machine().ladder(d).clamp(j.level);
      return j;
    }
    auto& q = d == sim::DeviceKind::kCpu ? cpu_pending : gpu_pending;
    if (q.empty()) return std::nullopt;
    const ScheduledJob j = q.front();
    q.pop_front();
    return j;
  };

  DeviceState cpu;
  DeviceState gpu;
  auto start_on = [&](sim::DeviceKind d) {
    DeviceState& st = d == sim::DeviceKind::kCpu ? cpu : gpu;
    const auto next = pull(d);
    if (!next) {
      st.job.reset();
      return;
    }
    st.job = next->job;
    st.level = next->level;
    st.frac = 1.0;
  };

  Seconds now = 0.0;
  // GPU first at t=0 (the higher-throughput device drains the shared queue
  // head first, matching the runtime's launch order).
  start_on(sim::DeviceKind::kGpu);
  start_on(sim::DeviceKind::kCpu);

  // Standalone time at the device's max level: the normalization unit for
  // backlog weighting.
  auto t_max = [&](std::size_t job, sim::DeviceKind d) {
    return m.standalone_time(ctx_.job_name(job), d,
                             m.machine().ladder(d).max_level());
  };

  // Model-driven DVFS: re-derive the operating point for the current
  // running set (see Schedule::model_dvfs), weighting each device by its
  // remaining backlog so one pair does not starve the busier pipeline.
  auto resolve_levels = [&](const std::optional<std::size_t>& cpu_job,
                            const std::optional<std::size_t>& gpu_job,
                            model::FreqPair stored) -> model::FreqPair {
    if (!schedule.model_dvfs) return enforce_cap(cpu_job, gpu_job, stored);
    model::FreqPair levels = stored;
    if (cpu_job && gpu_job) {
      auto backlog = [&](sim::DeviceKind d, std::size_t current, double frac,
                         const std::deque<ScheduledJob>& pending) {
        Seconds b = frac * t_max(current, d);
        for (const ScheduledJob& q : pending) b += t_max(q.job, d);
        return std::max(b, 1e-6);
      };
      const Seconds b_cpu =
          backlog(sim::DeviceKind::kCpu, *cpu_job, cpu.frac, cpu_pending);
      const Seconds b_gpu =
          backlog(sim::DeviceKind::kGpu, *gpu_job, gpu.frac, gpu_pending);
      const auto pair = m.best_pair_weighted(
          ctx_.job_name(*cpu_job), ctx_.job_name(*gpu_job), ctx_.cap,
          b_cpu / t_max(*cpu_job, sim::DeviceKind::kCpu),
          b_gpu / t_max(*gpu_job, sim::DeviceKind::kGpu));
      if (pair) levels = *pair;
    } else if (cpu_job) {
      const auto lvl = m.best_solo_level(ctx_.job_name(*cpu_job),
                                         sim::DeviceKind::kCpu, ctx_.cap);
      if (lvl) levels.cpu = *lvl;
    } else if (gpu_job) {
      const auto lvl = m.best_solo_level(ctx_.job_name(*gpu_job),
                                         sim::DeviceKind::kGpu, ctx_.cap);
      if (lvl) levels.gpu = *lvl;
    }
    return enforce_cap(cpu_job, gpu_job, levels);
  };

  while (cpu.job || gpu.job) {
    const model::FreqPair levels =
        resolve_levels(cpu.job, gpu.job, {cpu.level, gpu.level});

    double d_cpu = 0.0;
    double d_gpu = 0.0;
    Seconds t_cpu_solo = 0.0;
    Seconds t_gpu_solo = 0.0;
    if (cpu.job && gpu.job) {
      const model::PairPrediction p =
          m.predict(ctx_.job_name(*cpu.job), levels.cpu,
                    ctx_.job_name(*gpu.job), levels.gpu);
      d_cpu = p.cpu_degradation;
      d_gpu = p.gpu_degradation;
      t_cpu_solo = p.cpu_solo_time;
      t_gpu_solo = p.gpu_solo_time;
    } else if (cpu.job) {
      t_cpu_solo = m.standalone_time(ctx_.job_name(*cpu.job),
                                     sim::DeviceKind::kCpu, levels.cpu);
    } else if (gpu.job) {
      t_gpu_solo = m.standalone_time(ctx_.job_name(*gpu.job),
                                     sim::DeviceKind::kGpu, levels.gpu);
    }

    const Seconds cpu_to_finish =
        cpu.job ? cpu.frac * t_cpu_solo * (1.0 + d_cpu) * cpu_stretch
                : std::numeric_limits<Seconds>::infinity();
    const Seconds gpu_to_finish =
        gpu.job ? gpu.frac * t_gpu_solo * (1.0 + d_gpu)
                : std::numeric_limits<Seconds>::infinity();
    const Seconds dt = std::min(cpu_to_finish, gpu_to_finish);
    CORUN_CHECK_MSG(dt > 0.0 && dt < std::numeric_limits<Seconds>::infinity(),
                    "evaluator made no progress");

    out.timeline.push_back(EvalSegment{.start = now,
                                       .end = now + dt,
                                       .cpu_job = cpu.job,
                                       .gpu_job = gpu.job,
                                       .levels = levels,
                                       .cpu_degradation = d_cpu,
                                       .gpu_degradation = d_gpu});

    if (cpu.job) {
      cpu.frac -= dt / (t_cpu_solo * (1.0 + d_cpu) * cpu_stretch);
    }
    if (gpu.job) {
      gpu.frac -= dt / (t_gpu_solo * (1.0 + d_gpu));
    }
    now += dt;

    if (cpu.job && cpu.frac <= kDoneEps) {
      out.finish_time[*cpu.job] = now;
      start_on(sim::DeviceKind::kCpu);
    }
    if (gpu.job && gpu.frac <= kDoneEps) {
      out.finish_time[*gpu.job] = now;
      start_on(sim::DeviceKind::kGpu);
    }
  }

  // Solo tail: strictly sequential, the other device idles.
  for (const SoloJob& s : schedule.solo) {
    model::FreqPair levels{0, 0};
    std::optional<std::size_t> cpu_job;
    std::optional<std::size_t> gpu_job;
    if (s.device == sim::DeviceKind::kCpu) {
      cpu_job = s.job;
      levels.cpu = s.level;
    } else {
      gpu_job = s.job;
      levels.gpu = s.level;
    }
    levels = resolve_levels(cpu_job, gpu_job, levels);
    const sim::FreqLevel lvl =
        s.device == sim::DeviceKind::kCpu ? levels.cpu : levels.gpu;
    const Seconds t = m.standalone_time(ctx_.job_name(s.job), s.device, lvl);
    out.timeline.push_back(EvalSegment{.start = now,
                                       .end = now + t,
                                       .cpu_job = cpu_job,
                                       .gpu_job = gpu_job,
                                       .levels = levels});
    now += t;
    out.finish_time[s.job] = now;
  }

  out.makespan = now;
  return out;
}

Seconds MakespanEvaluator::makespan(const Schedule& schedule) const {
  return evaluate(schedule).makespan;
}

}  // namespace corun::sched
