// HCS — the paper's heuristic co-scheduling algorithm (Sec. IV-A).
//
// Three steps, each with the power-cap-aware variant of Sec. IV-A.2:
//  1. Partition jobs into S_co (can benefit from co-running with someone,
//     per the Co-Run Theorem, traversing cap-feasible frequency pairs) and
//     S_seq (always better off alone).
//  2. Categorize S_co into CPU-preferred / GPU-preferred / non-preferred
//     using the execution times at the highest cap-feasible frequency and
//     a threshold D (20% by default).
//  3. Greedy placement: seed the GPU with the longest GPU-preferred job,
//     then repeatedly give the freeing device the candidate (in preference
//     order) with the least predicted co-run interference against the job
//     running on the other device, choosing cap-feasible frequencies.
//  Finally S_seq jobs run solo on their best device.
#pragma once

#include <cstdint>
#include <vector>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

/// Processor preference classes of step 2.
enum class Preference { kCpu, kGpu, kNone };

[[nodiscard]] const char* preference_name(Preference p) noexcept;

struct HcsOptions {
  /// Threshold D of step 2: relative CPU/GPU time difference above which a
  /// job is considered to prefer its faster device.
  double preference_threshold = 0.20;

  /// Ablation knob: disable step 1 (every job joins S_co).
  bool use_theorem_partition = true;

  /// Ablation knob: pick co-run frequency pairs by the literal
  /// minimum-degradation criterion instead of minimum pair makespan.
  bool min_degradation_freq = false;
};

/// One placement decision of the greedy step, for explainability.
struct PairingDecision {
  sim::DeviceKind device = sim::DeviceKind::kCpu;
  std::size_t job = 0;
  Preference tier = Preference::kNone;     ///< tier the job was drawn from
  std::optional<std::size_t> partner;      ///< job on the other device, if any
  double degradation_sum = 0.0;            ///< predicted pair interference
  sim::FreqLevel level = 0;                ///< operating level at assignment
  Seconds predicted_start = 0.0;           ///< planner-clock start time
};

/// Full decision trace of one plan() run: why each job landed where it did.
struct HcsTrace {
  std::vector<bool> in_corun;              ///< step-1 partition (S_co flags)
  std::vector<Preference> preference;      ///< step-2 classes
  std::vector<PairingDecision> decisions;  ///< step-3 assignments, in order

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& job_names) const;
};

class HcsScheduler : public Scheduler {
 public:
  explicit HcsScheduler(HcsOptions options = {});

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;

  /// plan() that also records the decision trace (pass nullptr to skip).
  [[nodiscard]] Schedule plan_traced(const SchedulerContext& ctx,
                                     HcsTrace* trace);

  [[nodiscard]] std::string name() const override { return "HCS"; }

  // --- exposed steps (unit-testable in isolation) ---

  /// Step 1: true at index i iff job i belongs to S_co.
  [[nodiscard]] std::vector<bool> corun_partition(
      const SchedulerContext& ctx) const;

  /// Step 2: preference class of one job.
  [[nodiscard]] Preference categorize(const SchedulerContext& ctx,
                                      std::size_t job) const;

  /// Whether jobs i and j can profitably co-run in any placement at any
  /// cap-feasible frequency pair (the theorem test of step 1).
  [[nodiscard]] bool pair_beneficial(const SchedulerContext& ctx,
                                     std::size_t i, std::size_t j) const;

 private:
  [[nodiscard]] std::optional<model::FreqPair> choose_pair(
      const SchedulerContext& ctx, const std::string& cpu_job,
      const std::string& gpu_job) const;

  HcsOptions options_;
};

}  // namespace corun::sched
