// Exhaustive search over placements and orders for small batches.
//
// The optimal co-scheduling problem is NP-hard (Sec. IV), so this is only
// tractable for validation-sized batches (<= 8 jobs). Frequencies start at
// the ceilings and are resolved by the evaluator's cap enforcement, which
// matches how the runtime governor would execute the same schedule.
// Used by tests to confirm HCS lands close to the true (model-predicted)
// optimum, and by the ablation benches.
#pragma once

#include <cstddef>

#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

class ExhaustiveScheduler : public Scheduler {
 public:
  /// `max_jobs` guards against accidental combinatorial explosion.
  explicit ExhaustiveScheduler(std::size_t max_jobs = 8);

  [[nodiscard]] Schedule plan(const SchedulerContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "Exhaustive"; }

  /// Number of schedules evaluated during the last plan() call.
  [[nodiscard]] std::size_t evaluated() const noexcept { return evaluated_; }

 private:
  std::size_t max_jobs_;
  std::size_t evaluated_ = 0;
};

}  // namespace corun::sched
