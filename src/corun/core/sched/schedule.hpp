// Schedule representation shared by all scheduling algorithms.
//
// A schedule is (Definition 2.1): two mutually exclusive job sequences, one
// per device, each job carrying the frequency level its device should run at
// while it executes, plus an optional tail of jobs that run *alone* (the
// Co-Run Theorem can conclude a job is better off solo). The Default
// baseline additionally launches its whole CPU partition at once and lets
// the OS time-share it — `cpu_batch_launch` preserves that semantic.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/sim/frequency.hpp"

namespace corun::sched {

/// One job placed on a device within the co-run phase.
struct ScheduledJob {
  std::size_t job = 0;         ///< index into the Batch
  sim::FreqLevel level = 0;    ///< device frequency while this job runs
};

/// One job that runs with the other device idle.
struct SoloJob {
  std::size_t job = 0;
  sim::DeviceKind device = sim::DeviceKind::kCpu;
  sim::FreqLevel level = 0;
};

struct Schedule {
  std::vector<ScheduledJob> cpu;  ///< CPU execution order
  std::vector<ScheduledJob> gpu;  ///< GPU execution order
  std::vector<SoloJob> solo;      ///< executed after both sequences drain

  /// Default-baseline semantic: launch every CPU job at t=0 and time-share.
  bool cpu_batch_launch = false;

  /// Random-baseline semantic (Sec. VI-A): one fixed order; whichever device
  /// idles next pulls the head job. When set, `cpu`/`gpu` must be empty and
  /// `shared` holds the order.
  bool shared_queue = false;
  std::vector<ScheduledJob> shared;

  /// Model-driven DVFS (the HCS runtime semantic): whenever the running set
  /// changes, the executor re-derives the best cap-feasible frequency pair
  /// for the *current* pairing from the predictive model, instead of using
  /// the per-job levels below (which then serve only as documentation /
  /// fallback). This is what lets a power budget be re-split as partners
  /// come and go — a single static level per job cannot express that.
  bool model_dvfs = false;

  [[nodiscard]] std::size_t job_count() const noexcept {
    return cpu.size() + gpu.size() + solo.size() + shared.size();
  }

  /// Throws ContractViolation unless every batch index in [0, batch_size)
  /// appears exactly once across the three lists.
  void validate(std::size_t batch_size) const;

  /// Human-readable one-line-per-device rendering for logs and examples.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& job_names) const;
};

/// CSV round trip for schedules, so corun-schedule's plan can be saved and
/// handed to corun-run without replanning. Jobs are referenced by instance
/// name (resolved against `job_names` on load). Schema:
///   flags,<cpu_batch_launch>,<shared_queue>,<model_dvfs>
///   entry,<cpu|gpu|solo|shared>,<position>,<job name>,<level>,<device|->
void schedule_to_csv(const Schedule& schedule,
                     const std::vector<std::string>& job_names,
                     std::ostream& out);
[[nodiscard]] Expected<Schedule> schedule_from_csv(
    const std::string& text, const std::vector<std::string>& job_names);

}  // namespace corun::sched
