// Lower bound on the optimal makespan (Sec. IV-B).
//
// For each job i and processor p, the effective occupancy l'_{i,p} is the
// smaller of (a) the best cap-feasible co-run time with the least
// interfering partner, and (b) twice the best cap-feasible standalone time
// (a solo run occupies both processors' time budget). The bound is half the
// sum of min-over-p occupancies — two processors can at best halve total
// work. We additionally report a slightly tightened variant that cannot
// fall below the single longest job's best possible completion time.
#pragma once

#include "corun/common/units.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

struct LowerBoundResult {
  Seconds t_low = 0.0;          ///< the paper's formula
  Seconds t_low_tight = 0.0;    ///< max(t_low, longest job's best time)
};

[[nodiscard]] LowerBoundResult compute_lower_bound(const SchedulerContext& ctx);

}  // namespace corun::sched
