// Lower bounds on the optimal makespan (Sec. IV-B), static and incremental.
//
// Static bound (`compute_lower_bound`): for each job i and processor p, the
// effective occupancy l'_{i,p} is the smaller of (a) the best cap-feasible
// co-run time with the least interfering partner, and (b) twice the best
// cap-feasible standalone time (a solo run occupies both processors' time
// budget). The bound is half the sum of min-over-p occupancies — two
// processors can at best halve total work. We additionally report a
// slightly tightened variant that cannot fall below the single longest
// job's best possible completion time.
//
// Incremental bound (`IncrementalBound`): the branch-and-bound search's
// node bound, maintained along the search path with O(1) push/pop per
// placement (no O(n) recompute per node). Two components, both admissible
// for the index-order branching discipline (job d is placed at depth d):
//
//   1. Fractional residual-load relaxation: place every unplaced job's
//      optimistic solo time fractionally across the two devices so the
//      later-finishing device finishes earliest. With A/B the committed
//      CPU/GPU loads plus the suffix's forced (single-device-feasible)
//      loads, the optimum of  min_x max(A + sum x_j a_j, B + sum (1-x_j)
//      b_j)  is solved in closed form over per-depth prefix structures
//      sorted by a_j/(a_j+b_j) — every integral completion induces an
//      x in {0,1}^flex, so the fractional optimum is a true lower bound
//      that dominates max(L_cpu, L_gpu, (L_cpu+L_gpu+R)/2).
//   2. Power-cap occupancy relaxation: the paper's occupancy argument,
//      specialized per partial placement. Placed jobs contribute their
//      device-specific occupancy, unplaced jobs their min-over-device
//      occupancy; half the sum bounds the makespan. Under a tight cap
//      co-runs become infeasible and occupancies collapse to twice the
//      solo time, which is exactly where the fractional relaxation is
//      weakest. Unlike the static bound, the per-partner candidate set
//      includes the floor frequency pair unconditionally: the governor
//      tolerates a cap violation at the floor rather than stalling, so a
//      leaf's evaluator may legally co-run a pair no feasible operating
//      point exists for, and the bound must not exceed that leaf.
//
// Pops restore snapshots instead of subtracting deltas, so a node's bound
// is a pure function of its path (no floating-point drift across sibling
// traversals) — required for the search's byte-identity guarantees.
#pragma once

#include <cstddef>
#include <vector>

#include "corun/common/units.hpp"
#include "corun/core/sched/scheduler.hpp"

namespace corun::sched {

struct LowerBoundResult {
  Seconds t_low = 0.0;          ///< the paper's formula
  Seconds t_low_tight = 0.0;    ///< max(t_low, longest job's best time)
};

[[nodiscard]] LowerBoundResult compute_lower_bound(const SchedulerContext& ctx);

/// Occupancy of one job on one device: min(best co-run time, 2x best solo
/// time), plus the fastest single completion seen while computing it.
struct DeviceOccupancy {
  Seconds occupancy = 0.0;
  Seconds best_time = 0.0;
};

/// Effective occupancy l'_{i,p} of job `i` on device `p` (see file
/// comment). With `include_floor_pair` the per-partner co-run candidates
/// include the floor frequency pair even when it violates the cap — the
/// evaluator's last-resort operating point — which the search bound needs
/// for admissibility; `compute_lower_bound` keeps the paper's strict
/// cap-feasible set.
[[nodiscard]] DeviceOccupancy device_occupancy(const SchedulerContext& ctx,
                                               std::size_t i,
                                               sim::DeviceKind p,
                                               bool include_floor_pair);

/// Immutable per-instance tables behind the search's incremental bound:
/// optimistic solo times, per-device occupancies, and per-depth suffix
/// structures for the fractional relaxation. Built once per plan() call;
/// each search task walks it with its own Cursor.
class IncrementalBound {
 public:
  /// `t_cpu`/`t_gpu` are the search's optimistic per-device solo times
  /// (infinity when the device is cap-infeasible for the job), indexed by
  /// batch position. Construction is O(n^2 * levels^2) — the same order as
  /// compute_lower_bound — and happens once; queries never touch the
  /// predictor again.
  IncrementalBound(const SchedulerContext& ctx, std::vector<Seconds> t_cpu,
                   std::vector<Seconds> t_gpu);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Mutable search-path state over the shared tables. push(job, device)
  /// commits the next placement (job must equal the current depth — the
  /// index-order branching discipline); pop() restores the previous state
  /// exactly (snapshot, not arithmetic undo).
  class Cursor {
   public:
    explicit Cursor(const IncrementalBound& model);

    void push(std::size_t job, sim::DeviceKind device);
    void pop();

    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
    [[nodiscard]] sim::DeviceKind device_at(std::size_t job) const {
      return path_[job];
    }

    /// The pre-existing load bound: max(L_cpu, L_gpu, (L_cpu+L_gpu+R)/2).
    /// Kept bit-exact with the historical search for the legacy comparison
    /// mode and as the floor of the strong bound.
    [[nodiscard]] Seconds load_bound() const;

    /// max(load_bound, fractional relaxation, occupancy/2, and — for
    /// small unplaced suffixes — the enumerated-completion term, the
    /// minimum over integral completions of the joint load/occupancy
    /// form). Admissible, never weaker than load_bound().
    [[nodiscard]] Seconds bound() const;

    // Aggregates, exposed for the push/pop consistency tests.
    [[nodiscard]] Seconds cpu_load() const noexcept { return cpu_load_; }
    [[nodiscard]] Seconds gpu_load() const noexcept { return gpu_load_; }
    [[nodiscard]] Seconds remaining() const noexcept { return remaining_; }
    [[nodiscard]] Seconds occupancy_sum() const noexcept { return occ_sum_; }

   private:
    struct Frame {
      Seconds cpu_load, gpu_load, remaining, occ_sum;
    };

    const IncrementalBound* model_;
    std::size_t depth_ = 0;
    Seconds cpu_load_ = 0.0;
    Seconds gpu_load_ = 0.0;
    Seconds remaining_ = 0.0;   ///< sum of unplaced jobs' best-device times
    Seconds occ_sum_ = 0.0;     ///< committed + unplaced occupancies
    std::vector<sim::DeviceKind> path_;
    std::vector<Frame> undo_;
  };

  [[nodiscard]] Cursor cursor() const { return Cursor(*this); }

 private:
  friend class Cursor;

  /// Per-depth suffix structures for the fractional relaxation. The
  /// unplaced set at depth d is always the index suffix [d, n), so every
  /// depth's forced loads and ratio-sorted flex prefix sums are
  /// precomputable.
  struct DepthInfo {
    Seconds forced_cpu = 0.0;   ///< suffix jobs feasible only on the CPU
    Seconds forced_gpu = 0.0;
    std::vector<Seconds> a;     ///< flex CPU times, sorted by a/(a+b)
    std::vector<Seconds> ab;    ///< matching a+b
    std::vector<Seconds> cum_a;  ///< inclusive prefix sums of `a`
    std::vector<Seconds> cum_ab;
  };

  std::size_t n_ = 0;
  std::vector<Seconds> t_cpu_;
  std::vector<Seconds> t_gpu_;
  std::vector<Seconds> occ_cpu_;  ///< device occupancy (inf when infeasible)
  std::vector<Seconds> occ_gpu_;
  std::vector<Seconds> occ_min_;
  std::vector<DepthInfo> depths_;  ///< size n+1
};

}  // namespace corun::sched
