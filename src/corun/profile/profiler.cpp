#include "corun/profile/profiler.hpp"

#include <algorithm>

#include "corun/common/check.hpp"

namespace corun::profile {

Profiler::Profiler(sim::MachineConfig config, ProfilerOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

std::vector<sim::FreqLevel> Profiler::level_set(sim::DeviceKind d) const {
  const sim::FrequencyLadder& ladder = config_.ladder(d);
  const auto& requested =
      d == sim::DeviceKind::kCpu ? options_.cpu_levels : options_.gpu_levels;
  std::vector<sim::FreqLevel> levels;
  if (requested.empty()) {
    for (sim::FreqLevel l = 0; l <= ladder.max_level(); ++l) levels.push_back(l);
    return levels;
  }
  levels = requested;
  levels.push_back(ladder.max_level());  // max level is always needed
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (sim::FreqLevel l : levels) {
    CORUN_CHECK(l >= 0 && l <= ladder.max_level());
  }
  return levels;
}

ProfileEntry Profiler::profile_one(const sim::JobSpec& spec,
                                   sim::DeviceKind device,
                                   sim::FreqLevel level) const {
  // The idle domain is parked at its lowest level, as a power-aware OS
  // would; its idle power is level-independent in the model but parking
  // mirrors the measurement procedure on real hardware.
  const sim::FreqLevel cpu_level =
      device == sim::DeviceKind::kCpu ? level : 0;
  const sim::FreqLevel gpu_level =
      device == sim::DeviceKind::kGpu ? level : 0;
  const sim::StandaloneResult r = sim::run_standalone(
      config_, spec, device, cpu_level, gpu_level, options_.seed);
  return ProfileEntry{.time = r.time,
                      .avg_bw = r.avg_bandwidth,
                      .avg_power = r.avg_power,
                      .energy = r.energy};
}

ProfileDB Profiler::profile_batch(const workload::Batch& batch) const {
  ProfileDB db;
  db.set_idle_power(measure_idle_power());
  for (const workload::BatchJob& job : batch.jobs()) {
    for (const sim::DeviceKind device :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      for (const sim::FreqLevel level : level_set(device)) {
        db.insert(job.instance_name, device, level,
                  profile_one(job.spec, device, level));
      }
    }
  }
  return db;
}

Watts Profiler::measure_idle_power() const {
  sim::EngineOptions options;
  options.seed = options_.seed;
  options.record_samples = false;
  sim::Engine engine(config_, options);
  engine.set_ceilings(0, 0);
  engine.run_for(1.0);
  return engine.telemetry().avg_power();
}

}  // namespace corun::profile
