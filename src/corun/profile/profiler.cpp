#include "corun/profile/profiler.hpp"

#include <algorithm>
#include <memory>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"

namespace corun::profile {

Profiler::Profiler(sim::MachineConfig config, ProfilerOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

std::vector<sim::FreqLevel> Profiler::level_set(sim::DeviceKind d) const {
  const sim::FrequencyLadder& ladder = config_.ladder(d);
  const auto& requested =
      d == sim::DeviceKind::kCpu ? options_.cpu_levels : options_.gpu_levels;
  std::vector<sim::FreqLevel> levels;
  if (requested.empty()) {
    for (sim::FreqLevel l = 0; l <= ladder.max_level(); ++l) levels.push_back(l);
    return levels;
  }
  levels = requested;
  levels.push_back(ladder.max_level());  // max level is always needed
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (sim::FreqLevel l : levels) {
    CORUN_CHECK(l >= 0 && l <= ladder.max_level());
  }
  return levels;
}

ProfileEntry Profiler::profile_one(const sim::JobSpec& spec,
                                   sim::DeviceKind device,
                                   sim::FreqLevel level) const {
  const trace::Span span("profile", [&] {
    return "profile.sample " + spec.name + "/" + sim::device_name(device) +
           "/L" + std::to_string(level);
  });
  // The idle domain is parked at its lowest level, as a power-aware OS
  // would; its idle power is level-independent in the model but parking
  // mirrors the measurement procedure on real hardware.
  const sim::FreqLevel cpu_level =
      device == sim::DeviceKind::kCpu ? level : 0;
  const sim::FreqLevel gpu_level =
      device == sim::DeviceKind::kGpu ? level : 0;
  // The event backend defers to engine_mode (the --engine tick|event
  // choice); other backends measure through the factory.
  const sim::StandaloneResult r =
      options_.backend.kind == sim::BackendKind::kEvent
          ? sim::run_standalone(config_, spec, device, cpu_level, gpu_level,
                                options_.seed, options_.engine_mode)
          : sim::run_standalone(config_, spec, device, cpu_level, gpu_level,
                                options_.seed, options_.backend);
  return ProfileEntry{.time = r.time,
                      .avg_bw = r.avg_bandwidth,
                      .avg_power = r.avg_power,
                      .energy = r.energy};
}

ProfileDB Profiler::profile_batch(const workload::Batch& batch) const {
  CORUN_TRACE_SPAN("profile", "profile.profile_batch");
  CORUN_TRACE_INSTANT("profile",
                      std::string("profile.engine_mode=") +
                          sim::engine_mode_name(options_.engine_mode));
  ProfileDB db;
  db.set_idle_power(measure_idle_power());

  // Flatten the job x device x level sweep into an index space and fan it
  // out: every measurement is an independent standalone simulation seeded
  // from options_, so parallel and serial sweeps measure identical numbers.
  // Results are inserted in task-index order after the barrier, keeping the
  // DB (and its CSV) byte-identical to a serial sweep.
  struct Task {
    const workload::BatchJob* job;
    sim::DeviceKind device;
    sim::FreqLevel level;
  };
  std::vector<Task> tasks;
  for (const workload::BatchJob& job : batch.jobs()) {
    for (const sim::DeviceKind device :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      for (const sim::FreqLevel level : level_set(device)) {
        tasks.push_back({&job, device, level});
      }
    }
  }
  const std::vector<ProfileEntry> entries =
      common::TaskPool::shared().parallel_map<ProfileEntry>(
          tasks.size(), [&](std::size_t i) {
            const Task& t = tasks[i];
            return profile_one(t.job->spec, t.device, t.level);
          });
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    db.insert(tasks[i].job->instance_name, tasks[i].device, tasks[i].level,
              entries[i]);
  }
  return db;
}

Watts Profiler::measure_idle_power() const {
  sim::EngineOptions options;
  options.mode = options_.engine_mode;
  options.seed = options_.seed;
  options.record_samples = false;
  const std::unique_ptr<sim::MachineModel> machine =
      sim::make_machine_model(config_, options, options_.backend);
  machine->set_ceilings(0, 0);
  machine->run_for(1.0);
  return machine->telemetry().avg_power();
}

}  // namespace corun::profile
