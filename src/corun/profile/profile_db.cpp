#include "corun/profile/profile_db.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"

namespace corun::profile {
namespace {

std::tuple<std::string, int, int> make_key(const std::string& job,
                                           sim::DeviceKind device,
                                           sim::FreqLevel level) {
  return {job, static_cast<int>(device), level};
}

}  // namespace

void ProfileDB::insert(const std::string& job, sim::DeviceKind device,
                       sim::FreqLevel level, const ProfileEntry& entry) {
  CORUN_CHECK(!job.empty());
  CORUN_CHECK(level >= 0);
  CORUN_CHECK(entry.time > 0.0);
  entries_[make_key(job, device, level)] = entry;
}

bool ProfileDB::contains(const std::string& job, sim::DeviceKind device,
                         sim::FreqLevel level) const {
  return entries_.count(make_key(job, device, level)) > 0;
}

const ProfileEntry& ProfileDB::at(const std::string& job,
                                  sim::DeviceKind device,
                                  sim::FreqLevel level) const {
  const auto it = entries_.find(make_key(job, device, level));
  CORUN_CHECK_MSG(it != entries_.end(),
                  "no profile for " + job + " on " + sim::device_name(device) +
                      " at level " + std::to_string(level));
  return it->second;
}

std::vector<std::string> ProfileDB::jobs() const {
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) {
    const std::string& job = std::get<0>(key);
    if (names.empty() || names.back() != job) names.push_back(job);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<sim::FreqLevel> ProfileDB::levels(const std::string& job,
                                              sim::DeviceKind device) const {
  std::vector<sim::FreqLevel> out;
  for (const auto& [key, entry] : entries_) {
    if (std::get<0>(key) == job && std::get<1>(key) == static_cast<int>(device)) {
      out.push_back(std::get<2>(key));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Seconds ProfileDB::best_time(const std::string& job,
                             sim::DeviceKind device) const {
  const auto lv = levels(job, device);
  CORUN_CHECK_MSG(!lv.empty(), "no profiles for " + job);
  return at(job, device, lv.back()).time;
}

void ProfileDB::add_scaled_instance(const std::string& base_job,
                                    const std::string& instance,
                                    double scale) {
  CORUN_CHECK_MSG(scale > 0.0, "input scale must be positive");
  CORUN_CHECK_MSG(instance != base_job,
                  "scaled instance needs a distinct name");
  bool any = false;
  for (const sim::DeviceKind device :
       {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
    for (const sim::FreqLevel level : levels(base_job, device)) {
      const ProfileEntry& base = at(base_job, device, level);
      insert(instance, device, level,
             ProfileEntry{.time = base.time * scale,
                          .avg_bw = base.avg_bw,
                          .avg_power = base.avg_power,
                          .energy = base.energy * scale});
      any = true;
    }
  }
  CORUN_CHECK_MSG(any, "no profiles recorded for " + base_job);
}

void ProfileDB::scale_job(const std::string& job, double factor) {
  CORUN_CHECK_MSG(factor > 0.0, "profile drift factor must be positive");
  for (auto& [key, entry] : entries_) {
    if (std::get<0>(key) != job) continue;
    entry.time *= factor;
    entry.energy *= factor;
  }
}

void ProfileDB::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.write_row({"job", "device", "level", "time_s", "avg_bw_gbps",
                    "avg_power_w", "energy_j"});
  writer.write_row({"__idle__", "-", "0", "0", "0",
                    std::to_string(idle_power_), "0"});
  for (const auto& [key, e] : entries_) {
    writer.write_row({std::get<0>(key),
                      std::get<1>(key) == 0 ? "cpu" : "gpu",
                      std::to_string(std::get<2>(key)), std::to_string(e.time),
                      std::to_string(e.avg_bw), std::to_string(e.avg_power),
                      std::to_string(e.energy)});
  }
}

Expected<ProfileDB> ProfileDB::read_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  ProfileDB db;
  bool header_seen = false;
  for (const auto& row : rows.value()) {
    if (!header_seen) {
      header_seen = true;
      if (row.empty() || row[0] != "job") {
        return fail("profile CSV missing header", ErrorCategory::kParse);
      }
      continue;
    }
    if (row.size() != 7) return fail("profile CSV row arity != 7", ErrorCategory::kParse);
    try {
      if (row[0] == "__idle__") {
        db.set_idle_power(std::stod(row[5]));
        continue;
      }
      const sim::DeviceKind device =
          row[1] == "cpu" ? sim::DeviceKind::kCpu : sim::DeviceKind::kGpu;
      ProfileEntry e{.time = std::stod(row[3]),
                     .avg_bw = std::stod(row[4]),
                     .avg_power = std::stod(row[5]),
                     .energy = std::stod(row[6])};
      db.insert(row[0], device, std::stoi(row[2]), e);
    } catch (const std::exception& ex) {
      return fail(std::string("profile CSV parse error: ") + ex.what(), ErrorCategory::kParse);
    }
  }
  return db;
}

}  // namespace corun::profile
