// Offline profiler: sweeps each batch job standalone over device and
// frequency level on the simulator and fills a ProfileDB — the role the
// paper's offline profiling stage plays (Sec. V-C notes lightweight online
// estimators could substitute; the scheduler only consumes the DB interface).
#pragma once

#include <cstdint>
#include <vector>

#include "corun/profile/profile_db.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/machine.hpp"
#include "corun/workload/batch.hpp"

namespace corun::profile {

struct ProfilerOptions {
  std::uint64_t seed = 42;
  /// Stepping policy of every standalone measurement engine.
  sim::EngineMode engine_mode = sim::default_engine_mode();
  /// Machine backend the measurements run on. For the event backend,
  /// engine_mode picks the stepping core; analytic measures through the
  /// closed-form engine (identical numbers to 1e-9, much faster sweeps).
  sim::BackendSpec backend = sim::default_backend_spec();
  /// When set, only these CPU levels are profiled (plus the max level);
  /// empty = every level. Same for GPU. Sub-sampling keeps large sweeps
  /// cheap; the interpolating model tolerates gaps.
  std::vector<sim::FreqLevel> cpu_levels;
  std::vector<sim::FreqLevel> gpu_levels;
};

class Profiler {
 public:
  Profiler(sim::MachineConfig config, ProfilerOptions options = {});

  /// Standalone measurement of one spec at one operating point.
  [[nodiscard]] ProfileEntry profile_one(const sim::JobSpec& spec,
                                         sim::DeviceKind device,
                                         sim::FreqLevel level) const;

  /// Full sweep over a batch: every job x both devices x level set. Also
  /// measures and stores the idle package power.
  [[nodiscard]] ProfileDB profile_batch(const workload::Batch& batch) const;

  /// Idle package power (no jobs resident).
  [[nodiscard]] Watts measure_idle_power() const;

  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::vector<sim::FreqLevel> level_set(sim::DeviceKind d) const;

  sim::MachineConfig config_;
  ProfilerOptions options_;
};

}  // namespace corun::profile
