// Profile database: standalone measurements of every (job, device,
// frequency-level) combination, as collected by the paper's offline
// profiling stage (Sec. V-C). Schedulers and predictive models read times,
// average bandwidths and package powers from here; nothing downstream
// touches the simulator's internals, mirroring how the real system only
// sees measurements.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/common/units.hpp"
#include "corun/sim/frequency.hpp"

namespace corun::profile {

/// One standalone measurement.
struct ProfileEntry {
  Seconds time = 0.0;       ///< wall time of the standalone run
  GBps avg_bw = 0.0;        ///< average achieved memory bandwidth
  Watts avg_power = 0.0;    ///< average package power during the run
  Joules energy = 0.0;
};

class ProfileDB {
 public:
  void insert(const std::string& job, sim::DeviceKind device,
              sim::FreqLevel level, const ProfileEntry& entry);

  [[nodiscard]] bool contains(const std::string& job, sim::DeviceKind device,
                              sim::FreqLevel level) const;
  [[nodiscard]] const ProfileEntry& at(const std::string& job,
                                       sim::DeviceKind device,
                                       sim::FreqLevel level) const;

  /// All job names present, sorted.
  [[nodiscard]] std::vector<std::string> jobs() const;

  /// Levels recorded for (job, device), ascending.
  [[nodiscard]] std::vector<sim::FreqLevel> levels(const std::string& job,
                                                   sim::DeviceKind device) const;

  /// Standalone time at the highest recorded level for (job, device).
  [[nodiscard]] Seconds best_time(const std::string& job,
                                  sim::DeviceKind device) const;

  /// Idle package power (uncore + both domains idle); needed by the power
  /// predictor to avoid double-counting base power when summing standalone
  /// measurements.
  void set_idle_power(Watts idle) { idle_power_ = idle; }
  [[nodiscard]] Watts idle_power() const noexcept { return idle_power_; }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// CSV round trip; schema:
  ///   job,device,level,time_s,avg_bw_gbps,avg_power_w,energy_j
  /// with a leading pseudo-row for the idle power.
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static Expected<ProfileDB> read_csv(const std::string& text);

  /// Cross-run estimation (the third acquisition path Sec. V-C cites,
  /// after offline profiling and online sampling): synthesize the profile
  /// of a *new instance* of an already-profiled program whose input is
  /// `scale` times the measured one. Run time and energy scale linearly
  /// with input size; bandwidth and power are input-size invariant (they
  /// are rates of the same code). Adds entries under `instance` for every
  /// level recorded for `base_job`.
  void add_scaled_instance(const std::string& base_job,
                           const std::string& instance, double scale);

  /// Drifts the recorded standalone times (and energies) of `job` by
  /// `factor` across every (device, level) entry. Models profile
  /// misprediction: the planner's view of the job moves while ground truth
  /// stays put. No-op when the job has no entries.
  void scale_job(const std::string& job, double factor);

 private:
  using Key = std::tuple<std::string, int, int>;
  std::map<Key, ProfileEntry> entries_;
  Watts idle_power_ = 0.0;
};

}  // namespace corun::profile
