// Online (sampled) profiling — the practical deployment path of Sec. V-C.
//
// The paper uses full offline profiles "to assess the full capability of
// the proposed co-scheduling algorithm", noting that in practice standalone
// performance and power can be estimated on the fly by lightweight sampling
// methods. This class is that alternative: run each job for a short window
// at a sparse set of frequency levels, extrapolate the full runtime from
// the progress fraction, and take bandwidth and power from the window.
//
// Estimates are biased by whatever phases the window happens to see —
// exactly the accuracy/overhead trade-off the paper alludes to. The
// ablation bench quantifies the schedule-quality cost of using these
// estimates instead of full profiles.
#pragma once

#include <cstdint>
#include <vector>

#include "corun/profile/profile_db.hpp"
#include "corun/sim/backend.hpp"
#include "corun/sim/machine.hpp"
#include "corun/workload/batch.hpp"

namespace corun::profile {

struct OnlineProfilerOptions {
  Seconds sample_seconds = 3.0;  ///< per (job, device, level) sampling window
  /// Sparse level sets (the CoRunPredictor interpolates the gaps). The max
  /// level is always included.
  std::vector<sim::FreqLevel> cpu_levels{0, 8};
  std::vector<sim::FreqLevel> gpu_levels{0, 5};
  std::uint64_t seed = 42;
  /// Stepping policy of every sampling engine.
  sim::EngineMode engine_mode = sim::default_engine_mode();
  /// Machine backend the sampling windows run on.
  sim::BackendSpec backend = sim::default_backend_spec();
};

class OnlineProfiler {
 public:
  OnlineProfiler(sim::MachineConfig config, OnlineProfilerOptions options = {});

  /// One sampled estimate: runs the job standalone for the sampling window
  /// and extrapolates. Jobs shorter than the window are measured exactly.
  [[nodiscard]] ProfileEntry sample_one(const sim::JobSpec& spec,
                                        sim::DeviceKind device,
                                        sim::FreqLevel level) const;

  /// Estimated ProfileDB for a batch (plus the exact idle-power
  /// measurement, which is cheap either way).
  [[nodiscard]] ProfileDB profile_batch(const workload::Batch& batch) const;

  /// Total simulated seconds the sampling would occupy the machine for —
  /// the "profiling overhead" an online deployment pays.
  [[nodiscard]] Seconds sampling_cost(const workload::Batch& batch) const;

 private:
  [[nodiscard]] std::vector<sim::FreqLevel> level_set(sim::DeviceKind d) const;

  sim::MachineConfig config_;
  OnlineProfilerOptions options_;
};

}  // namespace corun::profile
