#include "corun/profile/online_profiler.hpp"

#include <algorithm>
#include <memory>

#include "corun/common/check.hpp"
#include "corun/common/task_pool.hpp"
#include "corun/common/trace/trace.hpp"
#include "corun/sim/engine.hpp"

namespace corun::profile {

OnlineProfiler::OnlineProfiler(sim::MachineConfig config,
                               OnlineProfilerOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  CORUN_CHECK(options_.sample_seconds > 0.0);
}

std::vector<sim::FreqLevel> OnlineProfiler::level_set(sim::DeviceKind d) const {
  CORUN_TRACE_COUNTER("online.level_set_evals", 1);
  const sim::FrequencyLadder& ladder = config_.ladder(d);
  std::vector<sim::FreqLevel> levels =
      d == sim::DeviceKind::kCpu ? options_.cpu_levels : options_.gpu_levels;
  levels.push_back(ladder.max_level());
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (const sim::FreqLevel l : levels) {
    CORUN_CHECK(l >= 0 && l <= ladder.max_level());
  }
  return levels;
}

ProfileEntry OnlineProfiler::sample_one(const sim::JobSpec& spec,
                                        sim::DeviceKind device,
                                        sim::FreqLevel level) const {
  const trace::Span span("profile", [&] {
    return "online.sample " + spec.name + "/" + sim::device_name(device) +
           "/L" + std::to_string(level);
  });
  sim::EngineOptions eo;
  eo.mode = options_.engine_mode;
  eo.seed = options_.seed;
  eo.record_samples = false;
  const std::unique_ptr<sim::MachineModel> machine =
      sim::make_machine_model(config_, eo, options_.backend);
  sim::MachineModel& engine = *machine;
  engine.set_ceilings(device == sim::DeviceKind::kCpu ? level : 0,
                      device == sim::DeviceKind::kGpu ? level : 0);
  const sim::JobId id = engine.launch(spec, device);
  // Stop at the job's finishing tick instead of padding out the window:
  // telemetry then spans the job's runtime only, so avg_power/energy of a
  // job shorter than the window are not diluted by post-finish idle ticks
  // (they match the offline profiler's measured values exactly).
  engine.run_for_until_event(options_.sample_seconds);

  const sim::JobStats& st = engine.stats(id);
  ProfileEntry entry;
  if (st.finished) {
    entry.time = st.runtime();
    entry.avg_bw = st.avg_bandwidth();
    entry.avg_power = engine.telemetry().avg_power();
    entry.energy = engine.telemetry().energy();  // measured, whole run
  } else {
    const double p = engine.progress(id);
    CORUN_CHECK_MSG(p > 0.0, "no progress in the sampling window");
    entry.time = options_.sample_seconds / p;
    entry.avg_bw = st.total_gb / options_.sample_seconds;
    entry.avg_power = engine.telemetry().avg_power();
    entry.energy = entry.avg_power * entry.time;  // extrapolated
  }
  return entry;
}

ProfileDB OnlineProfiler::profile_batch(const workload::Batch& batch) const {
  CORUN_TRACE_SPAN("profile", "online.profile_batch");
  CORUN_TRACE_INSTANT("profile",
                      std::string("online.engine_mode=") +
                          sim::engine_mode_name(options_.engine_mode));
  ProfileDB db;
  // Idle power is a one-second measurement either way; reuse the engine.
  {
    sim::EngineOptions eo;
    eo.mode = options_.engine_mode;
    eo.seed = options_.seed;
    eo.record_samples = false;
    const std::unique_ptr<sim::MachineModel> machine =
        sim::make_machine_model(config_, eo, options_.backend);
    machine->set_ceilings(0, 0);
    machine->run_for(1.0);
    db.set_idle_power(machine->telemetry().avg_power());
  }
  // Same deterministic fan-out as the offline profiler: each sampling
  // window is an independent engine run, collected in task-index order.
  struct Task {
    const workload::BatchJob* job;
    sim::DeviceKind device;
    sim::FreqLevel level;
  };
  std::vector<Task> tasks;
  for (const workload::BatchJob& job : batch.jobs()) {
    for (const sim::DeviceKind device :
         {sim::DeviceKind::kCpu, sim::DeviceKind::kGpu}) {
      for (const sim::FreqLevel level : level_set(device)) {
        tasks.push_back({&job, device, level});
      }
    }
  }
  const std::vector<ProfileEntry> entries =
      common::TaskPool::shared().parallel_map<ProfileEntry>(
          tasks.size(), [&](std::size_t i) {
            const Task& t = tasks[i];
            return sample_one(t.job->spec, t.device, t.level);
          });
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    db.insert(tasks[i].job->instance_name, tasks[i].device, tasks[i].level,
              entries[i]);
  }
  return db;
}

Seconds OnlineProfiler::sampling_cost(const workload::Batch& batch) const {
  // The level sets are batch-invariant, so derive the per-job window count
  // once instead of rebuilding both sets for every job.
  const auto windows_per_job =
      static_cast<double>(level_set(sim::DeviceKind::kCpu).size() +
                          level_set(sim::DeviceKind::kGpu).size());
  return options_.sample_seconds * windows_per_job *
         static_cast<double>(batch.jobs().size());
}

}  // namespace corun::profile
