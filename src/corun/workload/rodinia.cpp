#include "corun/workload/rodinia.hpp"

namespace corun::workload {
namespace {

// Table I standalone times (seconds at max frequency) with per-device
// compute/memory characters. Bandwidths are the demand during memory-bound
// portions; average standalone demand is (1 - compute_frac) * mem_bw.
// LLC fields give each program a cache personality the bandwidth-only
// predictive model cannot see: footprint = pressure it exerts, sensitivity
// = how much it suffers under eviction. The streaming micro-benchmark has
// near-zero reuse, so this channel is exactly the residual the paper's
// Fig. 7 error distribution measures.
const KernelDescriptor kSuite[] = {
    {.name = "streamcluster",
     .cpu = {.base_time = 59.71, .compute_frac = 0.30, .mem_bw = 9.0,
             .llc_footprint_mb = 3.5, .llc_sensitivity = 0.82},
     .gpu = {.base_time = 23.72, .compute_frac = 0.10, .mem_bw = 11.0,
             .llc_footprint_mb = 3.5, .llc_sensitivity = 0.17}},
    {.name = "cfd",
     .cpu = {.base_time = 49.69, .compute_frac = 0.35, .mem_bw = 8.5,
             .llc_footprint_mb = 3.0, .llc_sensitivity = 0.69},
     .gpu = {.base_time = 26.32, .compute_frac = 0.20, .mem_bw = 10.5,
             .llc_footprint_mb = 3.0, .llc_sensitivity = 0.14}},
    {.name = "dwt2d",
     .cpu = {.base_time = 24.37, .compute_frac = 0.30, .mem_bw = 9.0,
             .llc_footprint_mb = 2.5, .llc_sensitivity = 0.96},
     .gpu = {.base_time = 61.66, .compute_frac = 0.25, .mem_bw = 9.5,
             .llc_footprint_mb = 2.5, .llc_sensitivity = 0.19}},
    {.name = "hotspot",
     .cpu = {.base_time = 70.24, .compute_frac = 0.70, .mem_bw = 5.0,
             .llc_footprint_mb = 1.5, .llc_sensitivity = 0.41},
     .gpu = {.base_time = 28.52, .compute_frac = 0.60, .mem_bw = 7.0,
             .llc_footprint_mb = 1.5, .llc_sensitivity = 0.09}},
    {.name = "srad",
     .cpu = {.base_time = 51.39, .compute_frac = 0.50, .mem_bw = 7.5,
             .llc_footprint_mb = 2.5, .llc_sensitivity = 0.60},
     .gpu = {.base_time = 23.71, .compute_frac = 0.40, .mem_bw = 9.0,
             .llc_footprint_mb = 2.5, .llc_sensitivity = 0.12}},
    {.name = "lud",
     .cpu = {.base_time = 27.76, .compute_frac = 0.75, .mem_bw = 4.5,
             .llc_footprint_mb = 1.0, .llc_sensitivity = 0.50},
     .gpu = {.base_time = 24.83, .compute_frac = 0.72, .mem_bw = 5.0,
             .llc_footprint_mb = 1.0, .llc_sensitivity = 0.11}},
    {.name = "leukocyte",
     .cpu = {.base_time = 50.88, .compute_frac = 0.85, .mem_bw = 3.0,
             .llc_footprint_mb = 0.8, .llc_sensitivity = 0.22},
     .gpu = {.base_time = 23.08, .compute_frac = 0.80, .mem_bw = 4.0,
             .llc_footprint_mb = 0.8, .llc_sensitivity = 0.05}},
    {.name = "heartwall",
     .cpu = {.base_time = 54.68, .compute_frac = 0.55, .mem_bw = 6.5,
             .llc_footprint_mb = 2.0, .llc_sensitivity = 0.55},
     .gpu = {.base_time = 22.99, .compute_frac = 0.50, .mem_bw = 8.0,
             .llc_footprint_mb = 2.0, .llc_sensitivity = 0.11}},
};

// Programs the paper's testbed could not run stably under Beignet; their
// characters follow the published Rodinia characterizations (bfs/b+tree
// irregular and memory-latency-bound, kmeans/backprop bandwidth-streaming,
// nw/pathfinder wavefront with moderate reuse, lavaMD/gaussian
// compute-dense). Times are chosen in the same 20-70 s band as Table I.
const KernelDescriptor kExtended[] = {
    {.name = "backprop",
     .cpu = {.base_time = 44.20, .compute_frac = 0.40, .mem_bw = 8.0,
             .llc_footprint_mb = 2.8, .llc_sensitivity = 0.58},
     .gpu = {.base_time = 21.30, .compute_frac = 0.30, .mem_bw = 9.5,
             .llc_footprint_mb = 2.8, .llc_sensitivity = 0.15}},
    {.name = "bfs",
     .cpu = {.base_time = 38.60, .compute_frac = 0.25, .mem_bw = 7.5,
             .llc_footprint_mb = 3.2, .llc_sensitivity = 0.85},
     .gpu = {.base_time = 33.10, .compute_frac = 0.20, .mem_bw = 8.0,
             .llc_footprint_mb = 3.2, .llc_sensitivity = 0.22}},
    {.name = "kmeans",
     .cpu = {.base_time = 52.40, .compute_frac = 0.45, .mem_bw = 8.5,
             .llc_footprint_mb = 2.4, .llc_sensitivity = 0.50},
     .gpu = {.base_time = 24.60, .compute_frac = 0.35, .mem_bw = 10.0,
             .llc_footprint_mb = 2.4, .llc_sensitivity = 0.14}},
    {.name = "nw",
     .cpu = {.base_time = 31.80, .compute_frac = 0.55, .mem_bw = 6.0,
             .llc_footprint_mb = 1.8, .llc_sensitivity = 0.45},
     .gpu = {.base_time = 27.50, .compute_frac = 0.50, .mem_bw = 6.5,
             .llc_footprint_mb = 1.8, .llc_sensitivity = 0.12}},
    {.name = "pathfinder",
     .cpu = {.base_time = 47.30, .compute_frac = 0.60, .mem_bw = 6.0,
             .llc_footprint_mb = 1.6, .llc_sensitivity = 0.38},
     .gpu = {.base_time = 22.10, .compute_frac = 0.55, .mem_bw = 7.0,
             .llc_footprint_mb = 1.6, .llc_sensitivity = 0.10}},
    {.name = "lavaMD",
     .cpu = {.base_time = 61.70, .compute_frac = 0.88, .mem_bw = 2.5,
             .llc_footprint_mb = 0.6, .llc_sensitivity = 0.15},
     .gpu = {.base_time = 24.90, .compute_frac = 0.84, .mem_bw = 3.5,
             .llc_footprint_mb = 0.6, .llc_sensitivity = 0.05}},
    {.name = "b+tree",
     .cpu = {.base_time = 29.40, .compute_frac = 0.35, .mem_bw = 6.5,
             .llc_footprint_mb = 3.0, .llc_sensitivity = 0.75},
     .gpu = {.base_time = 31.20, .compute_frac = 0.30, .mem_bw = 7.0,
             .llc_footprint_mb = 3.0, .llc_sensitivity = 0.20}},
    {.name = "gaussian",
     .cpu = {.base_time = 56.90, .compute_frac = 0.78, .mem_bw = 4.0,
             .llc_footprint_mb = 1.2, .llc_sensitivity = 0.25},
     .gpu = {.base_time = 23.40, .compute_frac = 0.72, .mem_bw = 5.0,
             .llc_footprint_mb = 1.2, .llc_sensitivity = 0.08}},
};

}  // namespace

std::vector<KernelDescriptor> rodinia_suite() {
  return {std::begin(kSuite), std::end(kSuite)};
}

std::vector<KernelDescriptor> rodinia_extended() {
  return {std::begin(kExtended), std::end(kExtended)};
}

std::vector<KernelDescriptor> rodinia_all() {
  std::vector<KernelDescriptor> all = rodinia_suite();
  const auto extended = rodinia_extended();
  all.insert(all.end(), extended.begin(), extended.end());
  return all;
}

std::vector<KernelDescriptor> rodinia_motivation_four() {
  std::vector<KernelDescriptor> out;
  for (const char* name : {"streamcluster", "cfd", "dwt2d", "hotspot"}) {
    out.push_back(*rodinia_by_name(name));
  }
  return out;
}

std::optional<KernelDescriptor> rodinia_by_name(const std::string& name) {
  for (const KernelDescriptor& desc : kSuite) {
    if (desc.name == name) return desc;
  }
  for (const KernelDescriptor& desc : kExtended) {
    if (desc.name == name) return desc;
  }
  return std::nullopt;
}

}  // namespace corun::workload
