// Phase-trace synthesis.
//
// Real programs are not homogeneous: their compute/memory mix drifts over
// time. The simulator executes these phase traces while the paper's
// predictor only sees a program's *average* standalone bandwidth — this gap
// is what gives the staged-interpolation model a realistic, non-zero error
// (the paper reports ~15% average).
//
// The generator produces a deterministic trace (seeded) whose total duration
// equals the requested standalone time at max frequency and whose
// duration-weighted compute fraction matches the requested average.
#pragma once

#include <vector>

#include "corun/common/rng.hpp"
#include "corun/sim/job.hpp"

namespace corun::workload {

struct TraceParams {
  Seconds total_time = 20.0;   ///< standalone time at device max frequency
  double compute_frac = 0.5;   ///< target duration-weighted average
  GBps mem_bw = 6.0;           ///< average demand during memory portions
  unsigned phase_count = 14;   ///< number of segments
  double variability = 0.25;   ///< relative jitter of per-phase cf / bw
  sim::LlcBehavior llc{};      ///< cache behaviour, forwarded verbatim
};

/// Builds a phase trace matching `params`; deterministic for a given rng
/// state. variability = 0 yields a single uniform phase (used by the
/// micro-benchmark, which must be a *controlled* stressor).
[[nodiscard]] sim::DeviceProfile make_phase_trace(const TraceParams& params,
                                                  Rng rng);

}  // namespace corun::workload
