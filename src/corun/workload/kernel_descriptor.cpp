#include "corun/workload/kernel_descriptor.hpp"

#include "corun/common/check.hpp"

namespace corun::workload {

sim::JobSpec make_job_spec(const KernelDescriptor& desc, std::uint64_t seed) {
  CORUN_CHECK_MSG(!desc.name.empty(), "kernel descriptor needs a name");
  CORUN_CHECK(desc.input_scale > 0.0);

  const Rng root(seed);
  auto lower = [&](sim::DeviceKind d) {
    const DeviceCharacter& c = desc.character(d);
    TraceParams params{.total_time = c.base_time * desc.input_scale,
                       .compute_frac = c.compute_frac,
                       .mem_bw = c.mem_bw,
                       .phase_count = desc.phase_count,
                       .variability = desc.phase_variability,
                       .llc = {.footprint_mb = c.llc_footprint_mb,
                               .sensitivity = c.llc_sensitivity}};
    return make_phase_trace(params,
                            root.fork(desc.name + "/" + sim::device_name(d)));
  };

  sim::JobSpec spec;
  spec.name = desc.name;
  spec.cpu = lower(sim::DeviceKind::kCpu);
  spec.gpu = lower(sim::DeviceKind::kGpu);
  return spec;
}

ocl::KernelSource make_kernel_source(const KernelDescriptor& desc,
                                     std::uint64_t seed) {
  return ocl::KernelSource{.spec = make_job_spec(desc, seed),
                           .num_args = desc.num_args};
}

KernelDescriptor random_descriptor(Rng& rng, const std::string& name,
                                   const RandomWorkloadParams& params) {
  CORUN_CHECK(params.min_time > 0.0 && params.max_time > params.min_time);
  CORUN_CHECK(params.max_device_skew >= 1.0);

  KernelDescriptor desc;
  desc.name = name;
  desc.phase_count = static_cast<unsigned>(rng.uniform_int(4, 20));
  desc.phase_variability = rng.uniform(0.05, 0.35);

  // One device is the "home"; the other is slower by a random skew.
  const Seconds home_time = rng.uniform(params.min_time, params.max_time);
  const double skew = rng.uniform(1.0, params.max_device_skew);
  const bool gpu_home = rng.chance(0.7);  // most OpenCL kernels lean GPU

  // Memory appetite anti-correlates with compute fraction so the synthetic
  // population spans the same compute<->memory spectrum as the suite.
  const double cf = rng.uniform(0.1, 0.9);
  const GBps bw = params.max_mem_bw * (1.1 - cf) * rng.uniform(0.6, 1.0);
  const double footprint = rng.uniform(0.3, 4.0);
  const double cpu_sens = rng.uniform(0.0, params.max_llc_sensitivity);

  DeviceCharacter home{.base_time = home_time,
                       .compute_frac = cf,
                       .mem_bw = bw,
                       .llc_footprint_mb = footprint,
                       .llc_sensitivity = cpu_sens};
  DeviceCharacter away = home;
  away.base_time = home_time * skew;
  if (gpu_home) {
    desc.gpu = home;
    desc.cpu = away;
  } else {
    desc.cpu = home;
    desc.gpu = away;
  }
  // GPUs hide eviction latency better than CPUs, always.
  desc.gpu.llc_sensitivity = desc.cpu.llc_sensitivity * rng.uniform(0.2, 0.5);
  return desc;
}

}  // namespace corun::workload
