// The paper's Figure-4 micro-benchmark: a controllable memory stressor.
//
// The OpenCL kernel reads two large arrays, performs j_max register-resident
// arithmetic iterations, and writes one output element per work-item. By
// scaling the compute loop against the fixed per-item traffic (two reads +
// one write), the kernel's standalone bandwidth is dialled anywhere from
// 0 GB/s (pure compute) to the device's streaming limit. The
// characterization stage (Sec. V-B) runs it at 11 evenly spaced levels
// covering 0-11 GB/s on each device and co-runs every pair.
#pragma once

#include <cstddef>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/sim/machine.hpp"
#include "corun/workload/kernel_descriptor.hpp"

namespace corun::workload {

/// Host-visible tuning parameters of the Figure-4 kernel source.
struct MicroSourceParams {
  std::size_t array_elems = 64u << 20;  ///< per input array; must exceed LLC
  int i_max = 64;                       ///< outer (memory) iterations
  int j_max = 100;                      ///< inner (compute) iterations
};

/// Streaming bandwidth a single device can pull when fully memory-bound;
/// slightly above the paper's 11 GB/s top characterization level.
inline constexpr GBps kMicroStreamBw = 11.6;

/// The 11 standalone-bandwidth levels of the characterization grid
/// (0, 1.1, ..., 11.0 GB/s), as in Sec. V-B.
[[nodiscard]] std::vector<GBps> micro_grid_levels();

/// Builds a micro-benchmark descriptor whose standalone average bandwidth at
/// max frequency is `target_bw` on both devices (closed form: the descriptor
/// trades compute fraction against the fixed stream bandwidth).
/// Fails when target_bw exceeds kMicroStreamBw.
[[nodiscard]] Expected<KernelDescriptor> micro_kernel(GBps target_bw,
                                                      Seconds duration = 25.0);

/// Derives source-level loop parameters that realize a target bandwidth —
/// the knob an experimenter would actually turn (array sizes and j_max as in
/// Figure 4 of the paper).
[[nodiscard]] Expected<MicroSourceParams> micro_source_for(GBps target_bw);

/// The inverse mapping: what bandwidth a given source configuration offers.
[[nodiscard]] GBps micro_bandwidth_of(const MicroSourceParams& params);

/// Verifies a micro kernel against the simulator: measures its standalone
/// bandwidth on `device` at max frequency and returns it. The calibration
/// test asserts measurement == target within tick noise.
[[nodiscard]] GBps measure_micro_bandwidth(const sim::MachineConfig& config,
                                           const KernelDescriptor& desc,
                                           sim::DeviceKind device);

}  // namespace corun::workload
