#include "corun/workload/phase_trace.hpp"

#include <algorithm>
#include <cmath>

#include "corun/common/check.hpp"

namespace corun::workload {

sim::DeviceProfile make_phase_trace(const TraceParams& params, Rng rng) {
  CORUN_CHECK(params.total_time > 0.0);
  CORUN_CHECK(params.compute_frac >= 0.0 && params.compute_frac <= 1.0);
  CORUN_CHECK(params.mem_bw >= 0.0);
  CORUN_CHECK(params.phase_count >= 1);
  CORUN_CHECK(params.variability >= 0.0 && params.variability <= 1.0);

  if (params.variability == 0.0 || params.phase_count == 1) {
    return sim::DeviceProfile({sim::Phase{.dur_ref = params.total_time,
                                          .compute_frac = params.compute_frac,
                                          .mem_bw = params.mem_bw}},
                              params.llc);
  }

  const unsigned n = params.phase_count;
  std::vector<sim::Phase> phases(n);

  // Durations: uniform in [0.5, 1.5] of the mean, then normalized so the
  // trace sums exactly to the requested standalone time.
  double dur_sum = 0.0;
  for (auto& ph : phases) {
    ph.dur_ref = rng.uniform(0.5, 1.5);
    dur_sum += ph.dur_ref;
  }
  for (auto& ph : phases) {
    ph.dur_ref *= params.total_time / dur_sum;
  }

  // Compute fractions: jittered, then additively corrected so the
  // duration-weighted mean hits the target (clamping may leave a tiny
  // residual, acceptable for a synthetic program).
  const double v = params.variability;
  for (auto& ph : phases) {
    const double jitter = rng.uniform(-v, v);
    ph.compute_frac = std::clamp(params.compute_frac + jitter, 0.0, 1.0);
  }
  double cf_mean = 0.0;
  for (const auto& ph : phases) cf_mean += ph.compute_frac * ph.dur_ref;
  cf_mean /= params.total_time;
  const double correction = params.compute_frac - cf_mean;
  for (auto& ph : phases) {
    ph.compute_frac = std::clamp(ph.compute_frac + correction, 0.0, 1.0);
  }

  // Memory bandwidth of each phase's memory portion: multiplicative jitter
  // around the average, bounded below at a trickle so no phase is entirely
  // insensitive to contention unless the program is fully compute-bound.
  for (auto& ph : phases) {
    const double jitter = 1.0 + rng.uniform(-v, v);
    ph.mem_bw = std::max(0.0, params.mem_bw * jitter);
  }

  return sim::DeviceProfile(std::move(phases), params.llc);
}

}  // namespace corun::workload
