#include "corun/workload/microbench.hpp"

#include <cmath>

#include "corun/common/check.hpp"
#include "corun/sim/engine.hpp"

namespace corun::workload {
namespace {

// Source-to-character mapping constants. Each outer iteration moves
// 12 bytes per work item (two 4-byte reads, one 4-byte write) and executes
// 2 * j_max register ops (add + modulo). Aggregate device throughputs are
// rough Ivy Bridge figures; they only shape the j_max <-> compute-fraction
// exchange rate, not the simulated timing (which uses the descriptor).
constexpr double kBytesPerItemIter = 12.0;
constexpr double kOpsPerInnerIter = 2.0;
constexpr double kDeviceGops = 60.0;  // aggregate ops throughput, Gop/s

}  // namespace

std::vector<GBps> micro_grid_levels() {
  std::vector<GBps> levels(11);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    levels[i] = 1.1 * static_cast<double>(i);
  }
  return levels;
}

Expected<KernelDescriptor> micro_kernel(GBps target_bw, Seconds duration) {
  if (target_bw < 0.0 || target_bw > kMicroStreamBw) {
    return fail("micro-benchmark target bandwidth " + std::to_string(target_bw) +
                " GB/s outside [0, " + std::to_string(kMicroStreamBw) + "]", ErrorCategory::kInvalidArgument);
  }
  CORUN_CHECK(duration > 0.0);

  // Standalone at max frequency the average demand is
  // (1 - compute_frac) * stream_bw, so the compute fraction follows directly.
  const double cf = 1.0 - target_bw / kMicroStreamBw;
  const GBps bw = target_bw > 0.0 ? kMicroStreamBw : 0.0;

  KernelDescriptor desc;
  desc.name = "micro_" + std::to_string(target_bw);
  // Streaming arrays churn the whole LLC (full-footprint pressure on the
  // co-runner) but have almost no reuse themselves, so the stressor barely
  // suffers from eviction — the asymmetry that keeps the characterization
  // grid blind to cache-reuse effects, as on the real machine.
  desc.cpu = {.base_time = duration, .compute_frac = cf, .mem_bw = bw,
              .llc_footprint_mb = target_bw > 0.0 ? 4.0 : 0.0,
              .llc_sensitivity = 0.02};
  desc.gpu = desc.cpu;
  desc.num_args = 3;  // in_data_1, in_data_2, out_data
  desc.phase_count = 1;
  desc.phase_variability = 0.0;  // a stressor must be steady
  return desc;
}

Expected<MicroSourceParams> micro_source_for(GBps target_bw) {
  if (target_bw < 0.0 || target_bw > kMicroStreamBw) {
    return fail("target bandwidth out of range", ErrorCategory::kInvalidArgument);
  }
  MicroSourceParams params;
  if (target_bw <= 0.0) {
    params.j_max = 1 << 20;  // effectively pure compute
    return params;
  }
  // time_mem / time_total = target / stream  =>
  // time_comp / time_mem = stream/target - 1, and
  // time_comp/time_mem = (ops/Gops) / (bytes/stream_bw).
  const double comp_over_mem = kMicroStreamBw / target_bw - 1.0;
  const double bytes_time = kBytesPerItemIter / (kMicroStreamBw * 1e9);
  const double ops_needed = comp_over_mem * bytes_time * (kDeviceGops * 1e9);
  params.j_max = std::max(0, static_cast<int>(ops_needed / kOpsPerInnerIter + 0.5));
  return params;
}

GBps micro_bandwidth_of(const MicroSourceParams& params) {
  const double time_mem = kBytesPerItemIter / (kMicroStreamBw * 1e9);
  const double time_comp =
      kOpsPerInnerIter * params.j_max / (kDeviceGops * 1e9);
  return kMicroStreamBw * time_mem / (time_mem + time_comp);
}

GBps measure_micro_bandwidth(const sim::MachineConfig& config,
                             const KernelDescriptor& desc,
                             sim::DeviceKind device) {
  const sim::JobSpec spec = make_job_spec(desc, /*seed=*/1);
  const sim::StandaloneResult result =
      sim::run_standalone(config, spec, device, config.cpu_ladder.max_level(),
                          config.gpu_ladder.max_level());
  return result.avg_bandwidth;
}

}  // namespace corun::workload
