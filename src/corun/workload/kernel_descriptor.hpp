// Device-portable kernel descriptions.
//
// A KernelDescriptor is the workload layer's "source code": how the program
// behaves on each device when compiled for it (standalone time at max
// frequency, average compute fraction, memory appetite). `make_job_spec`
// plays the role of the device compiler, lowering the descriptor into the
// phase traces the simulator executes; `make_kernel_source` wraps the same
// thing for the mini-OpenCL Program/Kernel API.
#pragma once

#include <string>
#include <vector>

#include "corun/ocl/program.hpp"
#include "corun/sim/job.hpp"
#include "corun/workload/phase_trace.hpp"

namespace corun::workload {

/// Behaviour of a kernel on one device.
struct DeviceCharacter {
  Seconds base_time = 20.0;  ///< standalone time at device max frequency
  double compute_frac = 0.5; ///< average core-bound fraction at max frequency
  GBps mem_bw = 6.0;         ///< offered bandwidth during memory portions
  double llc_footprint_mb = 0.0;  ///< live working set in the shared LLC
  double llc_sensitivity = 0.0;   ///< extra slowdown when fully evicted
};

struct KernelDescriptor {
  std::string name;
  DeviceCharacter cpu;
  DeviceCharacter gpu;
  int num_args = 3;             ///< host-visible __kernel parameter count
  unsigned phase_count = 14;
  double phase_variability = 0.25;
  double input_scale = 1.0;     ///< scales base times (different input sizes)

  /// Standalone time at max frequency on `d`, including input scaling.
  [[nodiscard]] Seconds base_time(sim::DeviceKind d) const noexcept {
    const DeviceCharacter& c = d == sim::DeviceKind::kCpu ? cpu : gpu;
    return c.base_time * input_scale;
  }

  [[nodiscard]] const DeviceCharacter& character(sim::DeviceKind d) const noexcept {
    return d == sim::DeviceKind::kCpu ? cpu : gpu;
  }
};

/// Lowers a descriptor into per-device phase traces. The same seed always
/// produces the same program; distinct seeds model distinct inputs.
[[nodiscard]] sim::JobSpec make_job_spec(const KernelDescriptor& desc,
                                         std::uint64_t seed);

/// Same lowering, packaged for ocl::Program::build.
[[nodiscard]] ocl::KernelSource make_kernel_source(const KernelDescriptor& desc,
                                                   std::uint64_t seed);

/// Bounds for random workload synthesis (fuzzing, stress batches).
struct RandomWorkloadParams {
  Seconds min_time = 15.0;
  Seconds max_time = 80.0;
  double max_device_skew = 2.6;  ///< max ratio between CPU and GPU times
  GBps max_mem_bw = 11.0;
  double max_llc_sensitivity = 0.9;
};

/// Synthesizes a random but internally consistent kernel descriptor: device
/// times within the skew bound, compute fraction anti-correlated with
/// memory appetite, CPU cache sensitivity above the GPU's. Deterministic in
/// the rng state.
[[nodiscard]] KernelDescriptor random_descriptor(Rng& rng,
                                                 const std::string& name,
                                                 const RandomWorkloadParams&
                                                     params = {});

}  // namespace corun::workload
