// Synthetic analogues of the eight Rodinia OpenCL programs the paper
// evaluates (Sec. VI): streamcluster, cfd, dwt2d, hotspot, srad, lud,
// leukocyte, heartwall.
//
// Standalone times at maximum frequency are calibrated to Table I of the
// paper (e.g. streamcluster: 59.71 s CPU / 23.72 s GPU). Compute fractions
// and memory appetites are chosen to match each program's published
// character: streamcluster/cfd/dwt2d memory-hungry, hotspot/lud/leukocyte
// compute-leaning, and — crucially for the scheduler — dwt2d is the only
// CPU-preferred program while lud is the only non-preferred one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "corun/workload/kernel_descriptor.hpp"

namespace corun::workload {

/// All eight calibrated programs, in the paper's order.
[[nodiscard]] std::vector<KernelDescriptor> rodinia_suite();

/// The four programs of the paper's Sec. III motivating example:
/// streamcluster, cfd, dwt2d, hotspot.
[[nodiscard]] std::vector<KernelDescriptor> rodinia_motivation_four();

/// Eight additional Rodinia-style analogues (backprop, bfs, kmeans, nw,
/// pathfinder, lavaMD, b+tree, gaussian). The paper discarded these on its
/// testbed because the third-party GPU driver ran them unstably — a
/// limitation of Beignet, not of the algorithms — so they are calibrated
/// here from their published characters rather than from Table I. Used by
/// the scalability sweep to build batches beyond 16 instances.
[[nodiscard]] std::vector<KernelDescriptor> rodinia_extended();

/// The full catalogue: rodinia_suite() + rodinia_extended().
[[nodiscard]] std::vector<KernelDescriptor> rodinia_all();

/// Looks a program up by name; nullopt when unknown.
[[nodiscard]] std::optional<KernelDescriptor> rodinia_by_name(
    const std::string& name);

}  // namespace corun::workload
