#include "corun/workload/batch.hpp"

#include <ostream>

#include "corun/common/check.hpp"
#include "corun/common/csv.hpp"
#include "corun/workload/microbench.hpp"
#include "corun/workload/rodinia.hpp"

namespace corun::workload {

void Batch::add(const KernelDescriptor& desc, std::uint64_t seed,
                const std::string& instance_tag) {
  BatchJob job;
  job.descriptor = desc;
  job.seed = seed;
  job.instance_name = instance_tag.empty() ? desc.name : instance_tag;
  for (const BatchJob& existing : jobs_) {
    CORUN_CHECK_MSG(existing.instance_name != job.instance_name,
                    "duplicate instance name in batch");
  }
  job.spec = make_job_spec(desc, seed);
  job.spec.name = job.instance_name;
  jobs_.push_back(std::move(job));
}

const BatchJob& Batch::job(std::size_t i) const {
  CORUN_CHECK(i < jobs_.size());
  return jobs_[i];
}

Batch make_batch_8(std::uint64_t seed) {
  Batch batch;
  for (const KernelDescriptor& desc : rodinia_suite()) {
    batch.add(desc, seed + hash64(desc.name));
  }
  return batch;
}

Batch make_batch_16(std::uint64_t seed) {
  Batch batch;
  for (const KernelDescriptor& desc : rodinia_suite()) {
    batch.add(desc, seed + hash64(desc.name), desc.name + "#1");
    KernelDescriptor smaller = desc;
    smaller.input_scale = 0.8;  // "different inputs" per Sec. VI-D
    batch.add(smaller, seed + hash64(desc.name + "/2"), desc.name + "#2");
  }
  return batch;
}

Batch make_batch_motivation(std::uint64_t seed) {
  Batch batch;
  for (const KernelDescriptor& desc : rodinia_motivation_four()) {
    batch.add(desc, seed + hash64(desc.name));
  }
  return batch;
}

Batch make_batch_n(std::size_t n, std::uint64_t seed) {
  CORUN_CHECK(n >= 1);
  Batch batch;
  const auto catalogue = rodinia_all();
  for (std::size_t i = 0; i < n; ++i) {
    KernelDescriptor desc = catalogue[i % catalogue.size()];
    const std::size_t round = i / catalogue.size();
    desc.input_scale = 1.0 - 0.15 * static_cast<double>(round % 3);
    batch.add(desc, seed + hash64(desc.name) + 1000 * round,
              desc.name + "#" + std::to_string(round));
  }
  return batch;
}

Expected<Batch> batch_from_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (!rows.has_value()) return rows.error();
  Batch batch;
  bool header = true;
  for (const auto& row : rows.value()) {
    if (header) {
      header = false;
      if (row.size() < 4 || row[0] != "instance") {
        return fail("batch CSV must start with: instance,program,input_scale,seed", ErrorCategory::kParse);
      }
      continue;
    }
    if (row.size() != 4) return fail("batch CSV row arity != 4", ErrorCategory::kParse);
    const std::string& instance = row[0];
    const std::string& program = row[1];
    KernelDescriptor desc;
    if (program.rfind("micro:", 0) == 0) {
      const auto micro = micro_kernel(std::stod(program.substr(6)));
      if (!micro.has_value()) return micro.error();
      desc = micro.value();
    } else {
      const auto found = rodinia_by_name(program);
      if (!found.has_value()) {
        return fail("unknown program '" + program + "' in batch CSV", ErrorCategory::kNotFound);
      }
      desc = *found;
    }
    try {
      desc.input_scale = std::stod(row[2]);
      batch.add(desc, static_cast<std::uint64_t>(std::stoull(row[3])),
                instance);
    } catch (const ContractViolation&) {
      throw;  // duplicate instance etc.: a usage error worth surfacing
    } catch (const std::exception& ex) {
      return fail(std::string("batch CSV parse error: ") + ex.what(), ErrorCategory::kParse);
    }
  }
  if (batch.empty()) return fail("batch CSV describes no jobs", ErrorCategory::kParse);
  return batch;
}

void batch_to_csv(const Batch& batch, std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row({"instance", "program", "input_scale", "seed"});
  for (const BatchJob& job : batch.jobs()) {
    writer.write_row({job.instance_name, job.descriptor.name,
                      std::to_string(job.descriptor.input_scale),
                      std::to_string(job.seed)});
  }
}

}  // namespace corun::workload
