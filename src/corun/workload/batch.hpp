// Batch construction: the job sets the evaluation schedules operate on.
//
// A Batch pairs kernel descriptors with lowered job specs so schedulers can
// reason over descriptors (profiles, preferences) while the runtime executes
// the concrete specs. The two study configurations of the paper are provided:
// the 8-program set (one instance of each Rodinia analogue, Fig. 10) and the
// 16-program set (two instances each with different inputs, Fig. 11).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/sim/job.hpp"
#include "corun/workload/kernel_descriptor.hpp"

namespace corun::workload {

/// One schedulable instance inside a batch.
struct BatchJob {
  KernelDescriptor descriptor;
  sim::JobSpec spec;
  std::string instance_name;  ///< unique within the batch
  std::uint64_t seed = 0;     ///< input seed the spec was lowered with
};

class Batch {
 public:
  Batch() = default;

  /// Adds an instance; `instance_tag` distinguishes multiple instances of
  /// the same program (e.g. "cfd#2").
  void add(const KernelDescriptor& desc, std::uint64_t seed,
           const std::string& instance_tag = "");

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }
  [[nodiscard]] const BatchJob& job(std::size_t i) const;
  [[nodiscard]] const std::vector<BatchJob>& jobs() const noexcept {
    return jobs_;
  }

 private:
  std::vector<BatchJob> jobs_;
};

/// The Fig. 10 batch: eight programs, one instance each.
[[nodiscard]] Batch make_batch_8(std::uint64_t seed = 42);

/// The Fig. 11 batch: sixteen instances — each program twice, the second
/// instance with a different (smaller) input.
[[nodiscard]] Batch make_batch_16(std::uint64_t seed = 42);

/// The Sec. III motivating batch: streamcluster, cfd, dwt2d, hotspot.
[[nodiscard]] Batch make_batch_motivation(std::uint64_t seed = 42);

/// Arbitrary-size batch for scalability sweeps: cycles through the full
/// program catalogue (rodinia_all), varying the input scale per instance so
/// repeated programs are distinct jobs.
[[nodiscard]] Batch make_batch_n(std::size_t n, std::uint64_t seed = 42);

/// CSV batch description for the command-line tools. Schema:
///   instance,program,input_scale,seed
/// where `program` is a Rodinia-suite name (or "micro:<GBps>" for a
/// Figure-4 stressor at a target bandwidth) and `instance` must be unique.
[[nodiscard]] Expected<Batch> batch_from_csv(const std::string& text);
void batch_to_csv(const Batch& batch, std::ostream& out);

}  // namespace corun::workload
