#include "corun/ocl/kernel.hpp"

#include "corun/common/check.hpp"

namespace corun::ocl {

Kernel::Kernel(std::string name, sim::JobSpec spec, int num_args)
    : name_(std::move(name)), spec_(std::move(spec)),
      args_(static_cast<std::size_t>(num_args)) {
  CORUN_CHECK(num_args >= 0);
}

Status Kernel::set_arg(int index, std::shared_ptr<Buffer> buffer) {
  if (index < 0 || static_cast<std::size_t>(index) >= args_.size()) {
    return Status::kInvalidArgIndex;
  }
  if (buffer == nullptr) {
    return Status::kInvalidKernelArgs;
  }
  args_[static_cast<std::size_t>(index)] = std::move(buffer);
  return Status::kSuccess;
}

bool Kernel::args_complete() const noexcept {
  for (const auto& a : args_) {
    if (a == nullptr) return false;
  }
  return true;
}

const std::shared_ptr<Buffer>& Kernel::arg(int index) const {
  CORUN_CHECK(index >= 0 && static_cast<std::size_t>(index) < args_.size());
  return args_[static_cast<std::size_t>(index)];
}

}  // namespace corun::ocl
