// Program: a "compiled" collection of named kernels. In a real OpenCL stack
// this is the output of clBuildProgram; here building binds each kernel name
// to a per-device execution profile (sim::JobSpec) produced by the workload
// layer, which plays the role of the device compiler.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/ocl/context.hpp"
#include "corun/sim/job.hpp"

namespace corun::ocl {

class Kernel;

/// Source-level description of one kernel: its simulator profile plus the
/// host-visible argument signature.
struct KernelSource {
  sim::JobSpec spec;     ///< per-device behaviour (the "binary")
  int num_args = 0;      ///< declared __kernel parameter count
};

class Program : public std::enable_shared_from_this<Program> {
 public:
  static std::shared_ptr<Program> build(std::shared_ptr<Context> context,
                                        std::map<std::string, KernelSource> kernels);

  /// Creates a kernel object; fails with kInvalidKernelName for unknown names.
  [[nodiscard]] Expected<std::shared_ptr<Kernel>> create_kernel(
      const std::string& name);

  [[nodiscard]] std::vector<std::string> kernel_names() const;
  [[nodiscard]] const std::shared_ptr<Context>& context() const noexcept {
    return context_;
  }

 private:
  Program(std::shared_ptr<Context> context,
          std::map<std::string, KernelSource> kernels);

  std::shared_ptr<Context> context_;
  std::map<std::string, KernelSource> kernels_;
};

}  // namespace corun::ocl
