#include "corun/ocl/buffer.hpp"

#include "corun/common/check.hpp"

namespace corun::ocl {

Buffer::Buffer(std::size_t bytes, MemFlags flags, std::string label)
    : bytes_(bytes), flags_(flags), label_(std::move(label)) {
  CORUN_CHECK_MSG(bytes_ > 0, "zero-sized buffer");
}

bool Buffer::readable() const noexcept {
  return (static_cast<std::uint32_t>(flags_) &
          static_cast<std::uint32_t>(MemFlags::kReadOnly)) != 0;
}

bool Buffer::writable() const noexcept {
  return (static_cast<std::uint32_t>(flags_) &
          static_cast<std::uint32_t>(MemFlags::kWriteOnly)) != 0;
}

}  // namespace corun::ocl
