// Device memory object. On integrated processors host and device share
// physical memory, so "transfers" are zero-copy; the buffer still validates
// sizes and tracks access flags like a real CL buffer would.
#pragma once

#include <cstddef>
#include <string>

#include "corun/ocl/types.hpp"

namespace corun::ocl {

class Buffer {
 public:
  Buffer(std::size_t bytes, MemFlags flags, std::string label = "");

  [[nodiscard]] std::size_t size() const noexcept { return bytes_; }
  [[nodiscard]] MemFlags flags() const noexcept { return flags_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  [[nodiscard]] bool readable() const noexcept;
  [[nodiscard]] bool writable() const noexcept;

 private:
  std::size_t bytes_;
  MemFlags flags_;
  std::string label_;
};

}  // namespace corun::ocl
