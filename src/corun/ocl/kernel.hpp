// Kernel: an invocable entry point with OpenCL-style argument binding.
// All declared arguments must be bound (set_arg) before an enqueue is legal.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "corun/ocl/buffer.hpp"
#include "corun/ocl/types.hpp"
#include "corun/sim/job.hpp"

namespace corun::ocl {

class Kernel {
 public:
  Kernel(std::string name, sim::JobSpec spec, int num_args);

  /// Binds a buffer to argument `index`; mirrors clSetKernelArg.
  Status set_arg(int index, std::shared_ptr<Buffer> buffer);

  /// True when every declared argument has been bound.
  [[nodiscard]] bool args_complete() const noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const sim::JobSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int num_args() const noexcept {
    return static_cast<int>(args_.size());
  }
  [[nodiscard]] const std::shared_ptr<Buffer>& arg(int index) const;

 private:
  std::string name_;
  sim::JobSpec spec_;
  std::vector<std::shared_ptr<Buffer>> args_;
};

}  // namespace corun::ocl
