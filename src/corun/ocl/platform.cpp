#include "corun/ocl/platform.hpp"

namespace corun::ocl {

Platform::Platform(sim::MachineConfig config, sim::EngineOptions options)
    : config_(config), engine_(std::make_shared<sim::Engine>(config, options)) {
  devices_.emplace_back(sim::DeviceKind::kCpu, config_);
  devices_.emplace_back(sim::DeviceKind::kGpu, config_);
}

std::shared_ptr<Platform> Platform::create(sim::MachineConfig config,
                                           sim::EngineOptions options) {
  return std::shared_ptr<Platform>(
      new Platform(std::move(config), options));
}

std::shared_ptr<Platform> Platform::create_default(std::uint64_t seed) {
  sim::EngineOptions options;
  options.seed = seed;
  return create(sim::ivy_bridge(), options);
}

}  // namespace corun::ocl
