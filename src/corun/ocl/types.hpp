// Shared vocabulary types for the mini OpenCL-style host API.
//
// This layer reproduces the programming interface the paper's workloads use:
// a host program discovers a platform with a CPU device and a GPU device,
// builds kernels that are portable across both, and enqueues them through
// in-order command queues. "Compilation" maps a kernel to a per-device
// execution profile understood by the simulator; the host-visible API shape
// (platform -> device -> context -> program -> kernel -> queue -> event)
// deliberately mirrors OpenCL 1.2.
#pragma once

#include <cstdint>

namespace corun::ocl {

/// OpenCL-style status codes surfaced by the validating entry points.
enum class Status : std::int32_t {
  kSuccess = 0,
  kInvalidKernelName = -46,
  kInvalidArgIndex = -49,
  kInvalidKernelArgs = -52,
  kInvalidBufferSize = -61,
  kInvalidDevice = -33,
};

[[nodiscard]] constexpr const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kSuccess: return "SUCCESS";
    case Status::kInvalidKernelName: return "INVALID_KERNEL_NAME";
    case Status::kInvalidArgIndex: return "INVALID_ARG_INDEX";
    case Status::kInvalidKernelArgs: return "INVALID_KERNEL_ARGS";
    case Status::kInvalidBufferSize: return "INVALID_BUFFER_SIZE";
    case Status::kInvalidDevice: return "INVALID_DEVICE";
  }
  return "UNKNOWN";
}

/// Buffer access intent, as in CL_MEM_* flags.
enum class MemFlags : std::uint32_t {
  kReadOnly = 1u << 0,
  kWriteOnly = 1u << 1,
  kReadWrite = (1u << 0) | (1u << 1),
};

}  // namespace corun::ocl
