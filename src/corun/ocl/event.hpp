// Event: completion handle for an enqueued kernel, with OpenCL-profiling
// style timestamps (queued / submitted-to-device / finished).
#pragma once

#include <memory>
#include <string>

#include "corun/common/units.hpp"
#include "corun/sim/engine.hpp"

namespace corun::ocl {

class CommandQueue;

class Event {
 public:
  enum class State { kQueued, kRunning, kComplete };

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool complete() const noexcept { return state_ == State::kComplete; }

  /// Blocks (drives the simulation) until this command completes.
  void wait();

  /// Profiling timestamps, valid per state.
  [[nodiscard]] Seconds queued_at() const noexcept { return queued_at_; }
  [[nodiscard]] Seconds started_at() const noexcept { return started_at_; }
  [[nodiscard]] Seconds finished_at() const noexcept { return finished_at_; }
  [[nodiscard]] Seconds duration() const noexcept {
    return finished_at_ - started_at_;
  }

  [[nodiscard]] const std::string& kernel_name() const noexcept { return name_; }
  [[nodiscard]] sim::JobId job_id() const noexcept { return job_id_; }

 private:
  friend class CommandQueue;
  explicit Event(std::shared_ptr<CommandQueue> queue) : queue_(std::move(queue)) {}

  std::shared_ptr<CommandQueue> queue_;
  State state_ = State::kQueued;
  std::string name_;
  sim::JobId job_id_ = -1;
  Seconds queued_at_ = 0.0;
  Seconds started_at_ = 0.0;
  Seconds finished_at_ = 0.0;
};

}  // namespace corun::ocl
