// Context: groups the devices a host program targets and acts as the buffer
// factory, tracking total allocation like a real runtime would.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "corun/ocl/buffer.hpp"
#include "corun/ocl/platform.hpp"

namespace corun::ocl {

class CommandQueue;

class Context {
 public:
  explicit Context(std::shared_ptr<Platform> platform);

  [[nodiscard]] std::shared_ptr<Buffer> create_buffer(std::size_t bytes,
                                                      MemFlags flags,
                                                      std::string label = "");

  [[nodiscard]] const std::shared_ptr<Platform>& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] std::size_t total_allocated() const noexcept {
    return total_allocated_;
  }
  [[nodiscard]] std::size_t buffer_count() const noexcept {
    return live_buffers_;
  }

  /// Queues register themselves so that driving the engine from any event
  /// wait can submit ready work from *every* queue — that is what lets two
  /// queues (CPU + GPU) overlap into a co-run.
  void register_queue(std::weak_ptr<CommandQueue> queue);

  /// Submits ready work from all registered queues; returns true if any
  /// queue submitted something.
  bool pump_all();

  /// Forwards engine completion events to every registered queue.
  void dispatch_events(const std::vector<sim::JobEvent>& events);

 private:
  std::shared_ptr<Platform> platform_;
  std::size_t total_allocated_ = 0;
  std::size_t live_buffers_ = 0;
  std::vector<std::weak_ptr<CommandQueue>> queues_;
};

}  // namespace corun::ocl
