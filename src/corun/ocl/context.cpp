#include "corun/ocl/context.hpp"

#include "corun/common/check.hpp"
#include "corun/ocl/queue.hpp"

namespace corun::ocl {

Context::Context(std::shared_ptr<Platform> platform)
    : platform_(std::move(platform)) {
  CORUN_CHECK(platform_ != nullptr);
}

std::shared_ptr<Buffer> Context::create_buffer(std::size_t bytes, MemFlags flags,
                                               std::string label) {
  auto buffer = std::make_shared<Buffer>(bytes, flags, std::move(label));
  total_allocated_ += bytes;
  ++live_buffers_;
  return buffer;
}

void Context::register_queue(std::weak_ptr<CommandQueue> queue) {
  queues_.push_back(std::move(queue));
}

bool Context::pump_all() {
  bool any = false;
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (auto q = it->lock()) {
      any = q->pump() || any;
      ++it;
    } else {
      it = queues_.erase(it);
    }
  }
  return any;
}

void Context::dispatch_events(const std::vector<sim::JobEvent>& events) {
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (auto q = it->lock()) {
      q->absorb_events(events);
      ++it;
    } else {
      it = queues_.erase(it);
    }
  }
}

}  // namespace corun::ocl
