#include "corun/ocl/program.hpp"

#include "corun/common/check.hpp"
#include "corun/ocl/kernel.hpp"

namespace corun::ocl {

Program::Program(std::shared_ptr<Context> context,
                 std::map<std::string, KernelSource> kernels)
    : context_(std::move(context)), kernels_(std::move(kernels)) {
  CORUN_CHECK(context_ != nullptr);
  CORUN_CHECK_MSG(!kernels_.empty(), "program contains no kernels");
}

std::shared_ptr<Program> Program::build(
    std::shared_ptr<Context> context,
    std::map<std::string, KernelSource> kernels) {
  return std::shared_ptr<Program>(
      new Program(std::move(context), std::move(kernels)));
}

Expected<std::shared_ptr<Kernel>> Program::create_kernel(const std::string& name) {
  const auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    return fail("no kernel named '" + name + "' in program (" +
                status_name(Status::kInvalidKernelName) + ")", ErrorCategory::kNotFound);
  }
  return std::make_shared<Kernel>(name, it->second.spec, it->second.num_args);
}

std::vector<std::string> Program::kernel_names() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, source] : kernels_) names.push_back(name);
  return names;
}

}  // namespace corun::ocl
