// Platform: the OpenCL-style entry point. Owns the simulated machine (the
// "driver") and exposes its two devices.
#pragma once

#include <memory>
#include <vector>

#include "corun/ocl/device.hpp"
#include "corun/sim/engine.hpp"
#include "corun/sim/machine.hpp"

namespace corun::ocl {

class Platform {
 public:
  /// Builds a platform over a freshly constructed engine.
  static std::shared_ptr<Platform> create(sim::MachineConfig config,
                                          sim::EngineOptions options);

  /// Default platform: the calibrated Ivy Bridge machine, no power cap.
  static std::shared_ptr<Platform> create_default(std::uint64_t seed = 42);

  [[nodiscard]] const std::vector<Device>& devices() const noexcept {
    return devices_;
  }
  [[nodiscard]] const Device& cpu() const noexcept { return devices_[0]; }
  [[nodiscard]] const Device& gpu() const noexcept { return devices_[1]; }

  /// The underlying simulation engine (shared with queues/events).
  [[nodiscard]] const std::shared_ptr<sim::Engine>& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const sim::MachineConfig& machine() const noexcept {
    return config_;
  }

 private:
  Platform(sim::MachineConfig config, sim::EngineOptions options);

  sim::MachineConfig config_;
  std::shared_ptr<sim::Engine> engine_;
  std::vector<Device> devices_;
};

}  // namespace corun::ocl
