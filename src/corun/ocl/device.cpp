#include "corun/ocl/device.hpp"

namespace corun::ocl {

Device::Device(sim::DeviceKind kind, const sim::MachineConfig& config)
    : kind_(kind) {
  const sim::FrequencyLadder& ladder = config.ladder(kind);
  freq_levels_ = static_cast<int>(ladder.size());
  max_clock_mhz_ = static_cast<int>(ladder.max_ghz() * 1000.0 + 0.5);
  if (kind == sim::DeviceKind::kCpu) {
    name_ = "corun-sim CPU (Ivy Bridge class, " +
            std::to_string(config.cpu_cores) + " cores)";
    compute_units_ = config.cpu_cores;
  } else {
    name_ = "corun-sim iGPU (HD Graphics 4000 class)";
    compute_units_ = 16;  // HD4000 has 16 execution units
  }
}

}  // namespace corun::ocl
