#include "corun/ocl/queue.hpp"

#include <algorithm>

#include "corun/common/check.hpp"

namespace corun::ocl {

CommandQueue::CommandQueue(std::shared_ptr<Context> context,
                           sim::DeviceKind device)
    : context_(std::move(context)), device_(device) {
  CORUN_CHECK(context_ != nullptr);
}

std::shared_ptr<CommandQueue> CommandQueue::create(
    std::shared_ptr<Context> context, const Device& device) {
  auto queue = std::shared_ptr<CommandQueue>(
      new CommandQueue(std::move(context), device.kind()));
  queue->context_->register_queue(queue);
  return queue;
}

bool CommandQueue::PendingCommand::dependencies_met() const {
  for (const auto& dep : wait_list) {
    if (!dep->complete()) return false;
  }
  return true;
}

Expected<std::shared_ptr<Event>> CommandQueue::enqueue(
    std::shared_ptr<Kernel> kernel,
    std::vector<std::shared_ptr<Event>> wait_list) {
  CORUN_CHECK(kernel != nullptr);
  for (const auto& dep : wait_list) {
    if (dep == nullptr) {
      return fail("null event in wait list (" +
                  std::string(status_name(Status::kInvalidKernelArgs)) + ")", ErrorCategory::kInvalidArgument);
    }
  }
  if (!kernel->args_complete()) {
    return fail("kernel '" + kernel->name() + "' has unbound arguments (" +
                status_name(Status::kInvalidKernelArgs) + ")", ErrorCategory::kInvalidArgument);
  }
  if (kernel->spec().profile(device_).empty()) {
    return fail("kernel '" + kernel->name() + "' has no binary for " +
                sim::device_name(device_) + " (" +
                status_name(Status::kInvalidDevice) + ")", ErrorCategory::kNotFound);
  }
  auto event = std::shared_ptr<Event>(new Event(shared_from_this()));
  event->name_ = kernel->name();
  event->queued_at_ = context_->platform()->engine()->now();
  event->job_id_ = -1;
  queued_.push_back(PendingCommand{.event = event,
                                   .spec = kernel->spec(),
                                   .wait_list = std::move(wait_list)});
  pump();
  return event;
}

std::vector<std::shared_ptr<Event>> CommandQueue::outstanding_events() const {
  std::vector<std::shared_ptr<Event>> events = running_;
  for (const PendingCommand& command : queued_) {
    events.push_back(command.event);
  }
  return events;
}

std::shared_ptr<Event> CommandQueue::enqueue_marker(
    std::vector<std::shared_ptr<Event>> wait_list) {
  if (wait_list.empty()) {
    wait_list = outstanding_events();
  }
  auto event = std::shared_ptr<Event>(new Event(shared_from_this()));
  event->name_ = "(marker)";
  event->queued_at_ = context_->platform()->engine()->now();
  queued_.push_back(PendingCommand{.event = event,
                                   .spec = {},
                                   .wait_list = std::move(wait_list),
                                   .is_marker = true});
  pump();
  return event;
}

std::shared_ptr<Event> CommandQueue::enqueue_barrier() {
  // In an in-order queue a barrier is a marker on everything outstanding:
  // later commands already serialize behind the queue front.
  auto event = enqueue_marker();
  event->name_ = "(barrier)";
  return event;
}

bool CommandQueue::pump() {
  sim::Engine& engine = *context_->platform()->engine();
  bool submitted = false;
  // In-order: submit from the front while the device can accept work and
  // the front command's dependencies are satisfied. The GPU accepts one
  // job; the CPU is treated the same way here because oversubscription is
  // an explicit scheduler decision, not a queue one.
  while (!queued_.empty() && queued_.front().dependencies_met()) {
    if (queued_.front().is_marker) {
      PendingCommand command = std::move(queued_.front());
      queued_.pop_front();
      command.event->state_ = Event::State::kComplete;
      command.event->started_at_ = engine.now();
      command.event->finished_at_ = engine.now();
      submitted = true;
      continue;
    }
    if (!engine.device_idle(device_)) break;
    PendingCommand command = std::move(queued_.front());
    queued_.pop_front();
    command.event->job_id_ = engine.launch(command.spec, device_);
    command.event->state_ = Event::State::kRunning;
    command.event->started_at_ = engine.now();
    running_.push_back(std::move(command.event));
    submitted = true;
  }
  return submitted;
}

void CommandQueue::absorb_events(const std::vector<sim::JobEvent>& events) {
  for (const sim::JobEvent& ev : events) {
    const auto it = std::find_if(
        running_.begin(), running_.end(),
        [&](const std::shared_ptr<Event>& e) { return e->job_id_ == ev.id; });
    if (it != running_.end()) {
      (*it)->state_ = Event::State::kComplete;
      (*it)->finished_at_ = ev.finish_time;
      running_.erase(it);
    }
  }
}

void CommandQueue::drive_until(Event& event) {
  sim::Engine& engine = *context_->platform()->engine();
  while (!event.complete()) {
    context_->pump_all();
    if (event.complete()) break;  // markers complete inside pump
    if (engine.idle()) {
      CORUN_CHECK_MSG(event.complete(),
                      "event cannot complete: engine idle with work queued");
      break;
    }
    // Let every queue in the context see the completions so cross-queue
    // co-runs progress correctly.
    context_->dispatch_events(engine.run_until_event());
  }
}

void CommandQueue::finish() {
  sim::Engine& engine = *context_->platform()->engine();
  while (!queued_.empty() || !running_.empty()) {
    if (!running_.empty()) {
      auto event = running_.front();
      drive_until(*event);
    } else {
      // Pump every queue in the context: our front command may be blocked
      // on a dependency that itself has not been submitted yet.
      context_->pump_all();
      if (running_.empty() && !queued_.empty()) {
        // Device occupied by another queue's job (or our front is waiting
        // on another queue's running command): drive the engine forward.
        CORUN_CHECK_MSG(!engine.idle(),
                        "queue stalled with idle engine (dependency cycle?)");
        context_->dispatch_events(engine.run_until_event());
      }
    }
  }
}

}  // namespace corun::ocl
