#include "corun/ocl/event.hpp"

#include "corun/common/check.hpp"
#include "corun/ocl/queue.hpp"

namespace corun::ocl {

void Event::wait() {
  CORUN_CHECK(queue_ != nullptr);
  queue_->drive_until(*this);
}

}  // namespace corun::ocl
