// In-order command queue bound to one device.
//
// Enqueued kernels launch immediately when the device is free; otherwise
// they wait in the queue and are submitted as the device drains — the same
// in-order semantics the paper's workloads rely on. Waiting on an event
// drives the shared simulation engine forward, so two queues (one per
// device) naturally produce CPU-GPU co-runs.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "corun/common/expected.hpp"
#include "corun/ocl/context.hpp"
#include "corun/ocl/device.hpp"
#include "corun/ocl/event.hpp"
#include "corun/ocl/kernel.hpp"

namespace corun::ocl {

class CommandQueue : public std::enable_shared_from_this<CommandQueue> {
 public:
  static std::shared_ptr<CommandQueue> create(std::shared_ptr<Context> context,
                                              const Device& device);

  /// Enqueues a kernel for execution; all declared args must be bound.
  /// `wait_list` holds events (possibly from other queues) that must
  /// complete before this command may start — the clEnqueueNDRangeKernel
  /// event-dependency semantics. In-order queues additionally serialize
  /// behind their own earlier commands.
  [[nodiscard]] Expected<std::shared_ptr<Event>> enqueue(
      std::shared_ptr<Kernel> kernel,
      std::vector<std::shared_ptr<Event>> wait_list = {});

  /// Enqueues a marker that completes when all events in `wait_list` (or,
  /// with an empty list, everything previously enqueued here) complete —
  /// clEnqueueMarkerWithWaitList semantics. Markers occupy no device time.
  [[nodiscard]] std::shared_ptr<Event> enqueue_marker(
      std::vector<std::shared_ptr<Event>> wait_list = {});

  /// Enqueues a barrier: later commands in this queue do not start until
  /// everything enqueued before the barrier has completed
  /// (clEnqueueBarrier semantics). Returns the barrier's event.
  [[nodiscard]] std::shared_ptr<Event> enqueue_barrier();

  /// Blocks until every command in this queue has completed.
  void finish();

  /// Submits queued work if the device is free; called by Event::wait and
  /// finish. Returns true if something was submitted.
  bool pump();

  /// Marks any of this queue's running events that appear in `events` as
  /// complete. Invoked (via Context) whenever the engine is advanced.
  void absorb_events(const std::vector<sim::JobEvent>& events);

  [[nodiscard]] sim::DeviceKind device_kind() const noexcept { return device_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queued_.size(); }
  [[nodiscard]] const std::shared_ptr<Context>& context() const noexcept {
    return context_;
  }

 private:
  CommandQueue(std::shared_ptr<Context> context, sim::DeviceKind device);

  friend class Event;
  /// Advances the engine until `event` completes.
  void drive_until(Event& event);

  /// One not-yet-submitted command. Markers have `is_marker` set and no
  /// spec; they complete (instantly, consuming no device time) once their
  /// dependencies do.
  struct PendingCommand {
    std::shared_ptr<Event> event;
    sim::JobSpec spec;
    std::vector<std::shared_ptr<Event>> wait_list;
    bool is_marker = false;

    [[nodiscard]] bool dependencies_met() const;
  };

  /// Events of everything currently enqueued or running in this queue.
  [[nodiscard]] std::vector<std::shared_ptr<Event>> outstanding_events() const;

  std::shared_ptr<Context> context_;
  sim::DeviceKind device_;
  std::deque<PendingCommand> queued_;           ///< not yet on the device
  std::vector<std::shared_ptr<Event>> running_; ///< submitted, not finished
};

}  // namespace corun::ocl
