// Device handle: one of the two on-die execution domains, with OpenCL-style
// informational queries backed by the simulator's machine configuration.
#pragma once

#include <cstdint>
#include <string>

#include "corun/sim/machine.hpp"

namespace corun::ocl {

class Device {
 public:
  Device(sim::DeviceKind kind, const sim::MachineConfig& config);

  [[nodiscard]] sim::DeviceKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// CL_DEVICE_MAX_COMPUTE_UNITS analogue.
  [[nodiscard]] int compute_units() const noexcept { return compute_units_; }

  /// CL_DEVICE_MAX_CLOCK_FREQUENCY analogue, in MHz.
  [[nodiscard]] int max_clock_mhz() const noexcept { return max_clock_mhz_; }

  /// Number of DVFS levels the domain exposes.
  [[nodiscard]] int frequency_levels() const noexcept { return freq_levels_; }

  [[nodiscard]] bool is_cpu() const noexcept {
    return kind_ == sim::DeviceKind::kCpu;
  }
  [[nodiscard]] bool is_gpu() const noexcept {
    return kind_ == sim::DeviceKind::kGpu;
  }

 private:
  sim::DeviceKind kind_;
  std::string name_;
  int compute_units_;
  int max_clock_mhz_;
  int freq_levels_;
};

}  // namespace corun::ocl
